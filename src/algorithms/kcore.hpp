/**
 * @file
 * Iterative k-core peeling [14], adapted to directed propagation.
 *
 * A vertex is *alive* while its alive in-degree is at least k. State =
 * current alive in-degree; when a source dies, each of its out-edges
 * reports the death exactly once (the E_val cache is the reported flag)
 * and decrements its target. Counts only decrease, so the peeling is
 * monotone and order-independent.
 *
 * The per-edge math lives in KCorePolicy so the engine's specialized
 * wave kernels inline it without virtual dispatch. Note mergeMaster is
 * state-dependent (activation fires on crossing the threshold), so the
 * algorithm stays in the bitwise ordered-replay merge family.
 */

#pragma once

#include "algorithms/algorithm.hpp"

namespace digraph::algorithms {

/** Non-virtual k-core kernel policy (see PolicyAlgorithm). */
struct KCorePolicy
{
    Value k;

    static constexpr bool kUsesWeight = false;
    static constexpr bool kUsesOutDegree = false;
    static constexpr bool kAccumulative = false;

    bool
    processEdge(Value src, Value &edge_state, EdgeId, Value,
                std::uint32_t, Value &dst) const
    {
        if (src >= k || edge_state != 0.0)
            return false;
        edge_state = 1.0; // death reported exactly once
        const Value before = dst;
        dst -= 1.0;
        return before >= k && dst < k; // activation on crossing
    }

    bool
    mergeMaster(Value &master, Value pushed) const
    {
        const Value before = master;
        master += pushed;
        return pushed != 0.0 && before >= k && master < k;
    }

    Value pushValue(Value current, Value at_load) const
    {
        return current - at_load;
    }

    bool hasPush(Value current, Value at_load) const
    {
        return current != at_load;
    }

    Value pull(Value master, Value) const { return master; }
};

/** Directed k-core peeling (alive in-degree threshold). */
class KCore : public PolicyAlgorithm<KCorePolicy>
{
  public:
    /** @param k Core threshold. */
    explicit KCore(unsigned k = 3)
        : PolicyAlgorithm(KCorePolicy{static_cast<Value>(k)})
    {}

    std::string name() const override { return "kcore"; }
    std::string kernelTag() const override { return "kcore"; }

    Value
    initVertex(const graph::DirectedGraph &g, VertexId v) const override
    {
        return static_cast<Value>(g.inDegree(v));
    }

    double resultTolerance() const override { return 1e-9; }

    bool supportsIncremental() const override
    {
        // Insertions raise in-degrees, which could revive dead vertices;
        // the monotone peeling cannot move states upward.
        return false;
    }

    /** True when a final state value means the vertex is in the k-core. */
    bool alive(Value state) const { return state >= policy_.k; }

    /** The threshold k. */
    Value threshold() const { return policy_.k; }
};

} // namespace digraph::algorithms
