#include "algorithms/factory.hpp"

#include "algorithms/adsorption.hpp"
#include "algorithms/katz.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "common/logging.hpp"

namespace digraph::algorithms {

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "pagerank", "adsorption", "sssp", "kcore"};
    return names;
}

AlgorithmPtr
makeAlgorithm(const std::string &name, const graph::DirectedGraph &g)
{
    if (name == "pagerank")
        return std::make_shared<PageRank>();
    if (name == "adsorption")
        return std::make_shared<Adsorption>(g);
    if (name == "sssp")
        return std::make_shared<Sssp>(0);
    if (name == "kcore")
        return std::make_shared<KCore>(3);
    if (name == "katz")
        return std::make_shared<Katz>(g);
    if (name == "bfs")
        return std::make_shared<Bfs>(0);
    if (name == "wcc")
        return std::make_shared<Wcc>();
    fatal("makeAlgorithm: unknown algorithm '", name, "'");
}

} // namespace digraph::algorithms
