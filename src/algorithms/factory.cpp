#include "algorithms/factory.hpp"

#include "algorithms/adsorption.hpp"
#include "algorithms/katz.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "common/logging.hpp"

namespace digraph::algorithms {

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "pagerank", "adsorption", "sssp", "kcore"};
    return names;
}

const std::vector<std::string> &
allAlgorithmNames()
{
    static const std::vector<std::string> names = {
        "pagerank", "adsorption", "sssp", "kcore", "katz", "bfs", "wcc"};
    return names;
}

AlgorithmPtr
makeAlgorithm(const std::string &name, const graph::DirectedGraph &g)
{
    if (name == "pagerank")
        return std::make_shared<PageRank>();
    if (name == "adsorption")
        return std::make_shared<Adsorption>(g);
    if (name == "sssp")
        return std::make_shared<Sssp>(0);
    if (name == "kcore")
        return std::make_shared<KCore>(3);
    if (name == "katz")
        return std::make_shared<Katz>(g);
    if (name == "bfs")
        return std::make_shared<Bfs>(0);
    if (name == "wcc")
        return std::make_shared<Wcc>();
    fatal("makeAlgorithm: unknown algorithm '", name, "'");
}

AlgorithmPtr
makeAlgorithmSpec(const std::string &spec, const graph::DirectedGraph &g)
{
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return makeAlgorithm(spec, g);

    const std::string name = spec.substr(0, colon);
    const std::string param = spec.substr(colon + 1);
    std::uint64_t value = 0;
    std::size_t consumed = 0;
    try {
        value = std::stoull(param, &consumed);
    } catch (const std::exception &) {
        consumed = 0;
    }
    if (param.empty() || consumed != param.size()) {
        fatal("makeAlgorithmSpec: bad parameter '", param,
              "' in spec '", spec, "' (expected an unsigned integer)");
    }
    if (name == "sssp") {
        if (value >= g.numVertices())
            fatal("makeAlgorithmSpec: sssp source ", value,
                  " out of range (graph has ", g.numVertices(),
                  " vertices)");
        return std::make_shared<Sssp>(static_cast<VertexId>(value));
    }
    if (name == "bfs") {
        if (value >= g.numVertices())
            fatal("makeAlgorithmSpec: bfs source ", value,
                  " out of range (graph has ", g.numVertices(),
                  " vertices)");
        return std::make_shared<Bfs>(static_cast<VertexId>(value));
    }
    if (name == "kcore")
        return std::make_shared<KCore>(static_cast<std::uint32_t>(value));
    fatal("makeAlgorithmSpec: algorithm '", name,
          "' takes no parameter (spec '", spec, "')");
}

} // namespace digraph::algorithms
