/**
 * @file
 * HITS hubs & authorities [Kleinberg 1999].
 *
 * Unlike the engine algorithms, HITS alternates two coupled propagation
 * directions (authority mass flows along edges, hub mass against them),
 * so it is provided as a standalone power iteration over the CSR graph —
 * an analysis utility complementing the engine-driven centralities
 * (PageRank, Katz).
 */

#pragma once

#include <utility>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace digraph::algorithms {

/** Result of a HITS computation. */
struct HitsScores
{
    /** Authority score per vertex (L2-normalized). */
    std::vector<Value> authority;
    /** Hub score per vertex (L2-normalized). */
    std::vector<Value> hub;
    /** Power iterations executed. */
    unsigned iterations = 0;
};

/**
 * Power-iterate HITS until the maximum per-vertex change drops below
 * @p eps or @p max_iterations is reached.
 */
HitsScores computeHits(const graph::DirectedGraph &g,
                       unsigned max_iterations = 100, double eps = 1e-9);

} // namespace digraph::algorithms
