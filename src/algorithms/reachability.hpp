/**
 * @file
 * Multi-source reachability as monotone bitmask propagation: each of up
 * to 52 sources owns one bit; x(v) is the OR of the bits of the sources
 * that reach v. (52 bits so the mask is exactly representable in the
 * double-valued state arrays.) Answers the reachability-query workloads
 * of DAG-reduction style systems the paper cites [56].
 */

#pragma once

#include <vector>

#include "algorithms/algorithm.hpp"
#include "common/logging.hpp"

namespace digraph::algorithms {

/** Monotone multi-source reachability (bitwise-OR propagation). */
class Reachability : public Algorithm
{
  public:
    /** @param sources Up to 52 source vertices, one bit each. */
    explicit Reachability(std::vector<VertexId> sources)
        : sources_(std::move(sources))
    {
        if (sources_.size() > 52)
            fatal("Reachability: at most 52 sources supported");
    }

    std::string name() const override { return "reachability"; }

    Value
    initVertex(const graph::DirectedGraph &, VertexId v) const override
    {
        std::uint64_t mask = 0;
        for (std::size_t i = 0; i < sources_.size(); ++i) {
            if (sources_[i] == v)
                mask |= 1ull << i;
        }
        return static_cast<Value>(mask);
    }

    bool
    initActive(const graph::DirectedGraph &, VertexId v) const override
    {
        for (const VertexId s : sources_) {
            if (s == v)
                return true;
        }
        return false;
    }

    bool
    processEdge(Value src, Value &, EdgeId, Value, std::uint32_t,
                Value &dst) const override
    {
        const auto combined = static_cast<std::uint64_t>(dst) |
                              static_cast<std::uint64_t>(src);
        if (combined != static_cast<std::uint64_t>(dst)) {
            dst = static_cast<Value>(combined);
            return true;
        }
        return false;
    }

    bool
    mergeMaster(Value &master, Value pushed) const override
    {
        const auto combined = static_cast<std::uint64_t>(master) |
                              static_cast<std::uint64_t>(pushed);
        if (combined != static_cast<std::uint64_t>(master)) {
            master = static_cast<Value>(combined);
            return true;
        }
        return false;
    }

    Value pushValue(Value current, Value) const override { return current; }

    bool
    hasPush(Value current, Value at_load) const override
    {
        return static_cast<std::uint64_t>(current) !=
               static_cast<std::uint64_t>(at_load);
    }

    Value
    pull(Value master, Value mirror) const override
    {
        return static_cast<Value>(static_cast<std::uint64_t>(master) |
                                  static_cast<std::uint64_t>(mirror));
    }

    double resultTolerance() const override { return 0.0; }

    /** True when source bit @p i reaches a vertex with state @p state. */
    static bool
    reaches(Value state, std::size_t i)
    {
        return (static_cast<std::uint64_t>(state) >> i) & 1u;
    }

  private:
    std::vector<VertexId> sources_;
};

} // namespace digraph::algorithms
