#include "graph/builder.hpp"

#include <algorithm>
#include <unordered_set>

namespace digraph::graph {

void
GraphBuilder::addEdges(const std::vector<Edge> &edges)
{
    edges_.insert(edges_.end(), edges.begin(), edges.end());
}

DirectedGraph
GraphBuilder::build()
{
    VertexId n = num_vertices_;
    for (const Edge &e : edges_) {
        n = std::max(n, static_cast<VertexId>(
                            std::max(e.src, e.dst) + 1));
    }

    if (remove_self_loops_) {
        std::erase_if(edges_, [](const Edge &e) { return e.src == e.dst; });
    }

    std::stable_sort(edges_.begin(), edges_.end(),
                     [](const Edge &a, const Edge &b) {
                         return a.src != b.src ? a.src < b.src
                                               : a.dst < b.dst;
                     });

    if (deduplicate_) {
        edges_.erase(std::unique(edges_.begin(), edges_.end(),
                                 [](const Edge &a, const Edge &b) {
                                     return a.src == b.src &&
                                            a.dst == b.dst;
                                 }),
                     edges_.end());
    }

    std::vector<EdgeId> offsets(n + 1, 0);
    for (const Edge &e : edges_)
        ++offsets[e.src + 1];
    for (VertexId v = 0; v < n; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> targets(edges_.size());
    std::vector<Value> weights(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        targets[i] = edges_[i].dst;
        weights[i] = edges_[i].weight;
    }

    edges_.clear();
    edges_.shrink_to_fit();
    return DirectedGraph(std::move(offsets), std::move(targets),
                         std::move(weights));
}

GraphDelta
GraphBuilder::append(const DirectedGraph &base,
                     const std::vector<Edge> &batch)
{
    GraphDelta delta;
    delta.old_num_vertices = base.numVertices();

    // Normalize the batch: first-occurrence dedupe via a hash set keyed
    // on (src, dst), then drop self-loops and pairs base already has.
    delta.fresh.reserve(batch.size());
    std::unordered_set<std::uint64_t> seen(batch.size() * 2);
    for (const Edge &e : batch) {
        if (e.src == e.dst)
            continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
        if (!seen.insert(key).second)
            continue;
        if (e.src < base.numVertices() && base.hasEdge(e.src, e.dst))
            continue;
        delta.fresh.push_back(e);
    }
    std::sort(delta.fresh.begin(), delta.fresh.end(),
              [](const Edge &a, const Edge &b) {
                  return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });

    VertexId n = base.numVertices();
    for (const Edge &e : delta.fresh) {
        n = std::max(n, static_cast<VertexId>(
                            std::max(e.src, e.dst) + 1));
    }

    const EdgeId old_m = base.numEdges();
    const EdgeId new_m = old_m + delta.fresh.size();
    std::vector<EdgeId> offsets(n + 1, 0);
    std::vector<VertexId> targets(new_m);
    std::vector<Value> weights(new_m);
    delta.old_to_new.resize(old_m);
    delta.fresh_ids.resize(delta.fresh.size());

    // Row-merge: both the old adjacency row and the batch slice of each
    // source are (dst)-sorted, so one linear pass interleaves them while
    // journaling where every edge lands.
    std::size_t bi = 0; // cursor into delta.fresh
    EdgeId out = 0;
    for (VertexId v = 0; v < n; ++v) {
        offsets[v] = out;
        const auto nbrs = v < base.numVertices()
                              ? base.outNeighbors(v)
                              : std::span<const VertexId>{};
        const EdgeId row_base =
            v < base.numVertices() ? base.outOffset(v) : 0;
        std::size_t k = 0;
        while (k < nbrs.size() || (bi < delta.fresh.size() &&
                                   delta.fresh[bi].src == v)) {
            const bool take_fresh =
                bi < delta.fresh.size() && delta.fresh[bi].src == v &&
                (k >= nbrs.size() || delta.fresh[bi].dst < nbrs[k]);
            if (take_fresh) {
                targets[out] = delta.fresh[bi].dst;
                weights[out] = delta.fresh[bi].weight;
                delta.fresh_ids[bi] = out;
                ++bi;
            } else {
                const EdgeId old_id = row_base + k;
                targets[out] = nbrs[k];
                weights[out] = base.edgeWeight(old_id);
                delta.old_to_new[old_id] = out;
                ++k;
            }
            ++out;
        }
    }
    offsets[n] = out;

    delta.graph = DirectedGraph(std::move(offsets), std::move(targets),
                                std::move(weights));
    return delta;
}

} // namespace digraph::graph
