#include "graph/builder.hpp"

#include <algorithm>

namespace digraph::graph {

void
GraphBuilder::addEdges(const std::vector<Edge> &edges)
{
    edges_.insert(edges_.end(), edges.begin(), edges.end());
}

DirectedGraph
GraphBuilder::build()
{
    VertexId n = num_vertices_;
    for (const Edge &e : edges_) {
        n = std::max(n, static_cast<VertexId>(
                            std::max(e.src, e.dst) + 1));
    }

    if (remove_self_loops_) {
        std::erase_if(edges_, [](const Edge &e) { return e.src == e.dst; });
    }

    std::stable_sort(edges_.begin(), edges_.end(),
                     [](const Edge &a, const Edge &b) {
                         return a.src != b.src ? a.src < b.src
                                               : a.dst < b.dst;
                     });

    if (deduplicate_) {
        edges_.erase(std::unique(edges_.begin(), edges_.end(),
                                 [](const Edge &a, const Edge &b) {
                                     return a.src == b.src &&
                                            a.dst == b.dst;
                                 }),
                     edges_.end());
    }

    std::vector<EdgeId> offsets(n + 1, 0);
    for (const Edge &e : edges_)
        ++offsets[e.src + 1];
    for (VertexId v = 0; v < n; ++v)
        offsets[v + 1] += offsets[v];

    std::vector<VertexId> targets(edges_.size());
    std::vector<Value> weights(edges_.size());
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        targets[i] = edges_[i].dst;
        weights[i] = edges_[i].weight;
    }

    edges_.clear();
    edges_.shrink_to_fit();
    return DirectedGraph(std::move(offsets), std::move(targets),
                         std::move(weights));
}

} // namespace digraph::graph
