/**
 * @file
 * Edge-list to CSR graph construction.
 */

#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace digraph::graph {

/**
 * Result of GraphBuilder::append — the extended graph plus the edge-delta
 * journal that lets downstream consumers (incremental preprocessing, the
 * evolving engine's warm start) work in O(|batch|) instead of re-deriving
 * the delta with O(m) hasEdge probes.
 *
 * Edge ids are positional in the (src, dst)-sorted CSR, so inserting an
 * edge shifts every id behind its insertion point; `old_to_new` records
 * the shift for every surviving old edge and `fresh_ids` the final ids of
 * the accepted batch edges.
 */
struct GraphDelta
{
    /** The extended graph (old edges keep their weights). */
    DirectedGraph graph;
    /** Accepted batch edges — first-occurrence deduplicated, self-loops
     *  and already-present (src, dst) pairs dropped — sorted by
     *  (src, dst). */
    std::vector<Edge> fresh;
    /** Edge id of fresh[i] in `graph`. */
    std::vector<EdgeId> fresh_ids;
    /** New edge id of every old edge (size = old numEdges()). */
    std::vector<EdgeId> old_to_new;
    /** Vertex count before the append. */
    VertexId old_num_vertices = 0;
};

/**
 * Accumulates edges and finalizes them into an immutable DirectedGraph.
 *
 * Edges are sorted by (src, dst); self-loops and duplicate (src, dst) pairs
 * can optionally be removed (duplicates keep the first weight seen).
 */
class GraphBuilder
{
  public:
    /** @param num_vertices Vertex-count hint; grows if edges exceed it. */
    explicit GraphBuilder(VertexId num_vertices = 0)
        : num_vertices_(num_vertices)
    {}

    /** Add a directed edge. */
    void
    addEdge(VertexId src, VertexId dst, Value weight = 1.0)
    {
        edges_.push_back({src, dst, weight});
    }

    /** Append a batch of edges. */
    void addEdges(const std::vector<Edge> &edges);

    /** Number of edges currently buffered. */
    std::size_t edgeCount() const { return edges_.size(); }

    /** Drop self-loops during build(). Default true. */
    void setRemoveSelfLoops(bool on) { remove_self_loops_ = on; }

    /** Deduplicate parallel edges during build(). Default true. */
    void setDeduplicate(bool on) { deduplicate_ = on; }

    /**
     * Build the CSR graph. The builder is left empty afterwards.
     * Isolated vertices up to the max id (or the constructor hint) are kept.
     */
    DirectedGraph build();

    /**
     * Extend @p base with @p batch without re-adding its m existing
     * edges: each adjacency row is merged with the (sorted) accepted
     * batch edges of its source, costing O(n + m + |batch| log |batch|)
     * instead of the O((m + |batch|) log (m + |batch|)) full re-sort a
     * rebuild through build() pays.
     *
     * Batch normalization matches the evolving-graph insert contract:
     * self-loops are dropped, (src, dst) pairs already in @p base are
     * dropped (existing weights win), and intra-batch repeats collapse to
     * their first occurrence (hash-set dedupe, O(|batch|)).
     */
    static GraphDelta append(const DirectedGraph &base,
                             const std::vector<Edge> &batch);

  private:
    VertexId num_vertices_;
    std::vector<Edge> edges_;
    bool remove_self_loops_ = true;
    bool deduplicate_ = true;
};

} // namespace digraph::graph
