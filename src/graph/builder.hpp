/**
 * @file
 * Edge-list to CSR graph construction.
 */

#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace digraph::graph {

/**
 * Accumulates edges and finalizes them into an immutable DirectedGraph.
 *
 * Edges are sorted by (src, dst); self-loops and duplicate (src, dst) pairs
 * can optionally be removed (duplicates keep the first weight seen).
 */
class GraphBuilder
{
  public:
    /** @param num_vertices Vertex-count hint; grows if edges exceed it. */
    explicit GraphBuilder(VertexId num_vertices = 0)
        : num_vertices_(num_vertices)
    {}

    /** Add a directed edge. */
    void
    addEdge(VertexId src, VertexId dst, Value weight = 1.0)
    {
        edges_.push_back({src, dst, weight});
    }

    /** Append a batch of edges. */
    void addEdges(const std::vector<Edge> &edges);

    /** Number of edges currently buffered. */
    std::size_t edgeCount() const { return edges_.size(); }

    /** Drop self-loops during build(). Default true. */
    void setRemoveSelfLoops(bool on) { remove_self_loops_ = on; }

    /** Deduplicate parallel edges during build(). Default true. */
    void setDeduplicate(bool on) { deduplicate_ = on; }

    /**
     * Build the CSR graph. The builder is left empty afterwards.
     * Isolated vertices up to the max id (or the constructor hint) are kept.
     */
    DirectedGraph build();

  private:
    VertexId num_vertices_;
    std::vector<Edge> edges_;
    bool remove_self_loops_ = true;
    bool deduplicate_ = true;
};

} // namespace digraph::graph
