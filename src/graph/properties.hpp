/**
 * @file
 * Structural property analysis (Table 1 and Fig 2d inputs): degree
 * statistics, sampled average distance, and SCC structure.
 */

#pragma once

#include <cstdint>
#include <string>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Measured structural properties of a directed graph. */
struct GraphProperties
{
    VertexId num_vertices = 0;
    EdgeId num_edges = 0;
    /** Average out-degree (paper's A_Deg). */
    double avg_degree = 0.0;
    std::size_t max_out_degree = 0;
    std::size_t max_in_degree = 0;
    /** Average hop distance over sampled reachable pairs (A_Dis). */
    double avg_distance = 0.0;
    /** Number of SCCs. */
    SccId num_sccs = 0;
    /** Fraction of vertices in the giant SCC. */
    double giant_scc_fraction = 0.0;
    /** Fraction of edges whose reverse edge also exists. */
    double bidirectional_ratio = 0.0;
};

/**
 * Measure @p g.
 * @param distance_samples BFS sources sampled for the average distance
 *        (0 disables the distance measurement).
 * @param seed Sampling seed.
 */
GraphProperties measureProperties(const DirectedGraph &g,
                                  unsigned distance_samples = 32,
                                  std::uint64_t seed = 7);

/** Fraction of edges whose reverse edge exists. */
double bidirectionalRatio(const DirectedGraph &g);

/** One-line human-readable summary. */
std::string describe(const GraphProperties &p);

} // namespace digraph::graph
