/**
 * @file
 * Strongly connected components (iterative Tarjan) and condensation.
 *
 * The paper uses Tarjan [40] twice: once per CPU thread on subgraphs of the
 * path dependency graph, and once more to merge the local DAG sketches into
 * the global one (Section 3.2.1). This module provides the single-graph
 * primitive both steps build on.
 */

#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Result of an SCC decomposition. */
struct SccResult
{
    /** Component id per vertex; ids are in reverse topological order of the
     *  condensation (Tarjan's natural output order). */
    std::vector<SccId> component;

    /** Number of components. */
    SccId num_components = 0;

    /** Component sizes, indexed by component id. */
    std::vector<VertexId> sizes;

    /** Id of the largest component. */
    SccId giantComponent() const;

    /** Fraction of all vertices inside the largest component. */
    double giantFraction() const;
};

/** Compute SCCs of @p g with an iterative Tarjan (no recursion, safe for
 *  deep graphs). */
SccResult computeScc(const DirectedGraph &g);

/**
 * Build the condensation (DAG of SCCs): one vertex per component, one edge
 * per pair of components connected by at least one original edge
 * (deduplicated, no self-loops).
 */
DirectedGraph condense(const DirectedGraph &g, const SccResult &scc);

} // namespace digraph::graph
