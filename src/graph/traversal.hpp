/**
 * @file
 * Graph traversal utilities: BFS hop distances, topological ordering, and
 * reachability — used by the property analyzers, the DAG sketch layering,
 * and the test oracles.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Sentinel distance for unreachable vertices. */
inline constexpr std::uint32_t kUnreachable = UINT32_MAX;

/** Hop distances from @p src along out-edges (kUnreachable if none). */
std::vector<std::uint32_t> bfsDistances(const DirectedGraph &g,
                                        VertexId src);

/**
 * Kahn topological order.
 * @return the order, or an empty vector when the graph has a cycle
 *         (a non-empty graph always yields a non-empty order when acyclic).
 */
std::vector<VertexId> topologicalOrder(const DirectedGraph &g);

/** True when the graph contains no directed cycle. */
bool isAcyclic(const DirectedGraph &g);

/**
 * Layer numbers for a DAG: layer(v) = longest path length from any source
 * to v; every edge goes from a lower to a strictly higher layer.
 * @pre g is acyclic (panics otherwise).
 */
std::vector<std::uint32_t> dagLayers(const DirectedGraph &g);

/** Vertices reachable from @p src (including itself). */
std::vector<VertexId> reachableFrom(const DirectedGraph &g, VertexId src);

} // namespace digraph::graph
