/**
 * @file
 * Immutable directed graph in CSR form (both out- and in-adjacency).
 *
 * This is the substrate every other module consumes: the path decomposer
 * walks the out-adjacency, the GAS algorithms gather over the in-adjacency,
 * and the storage layer re-materializes edges into the paper's four-array
 * path layout.
 */

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace digraph::graph {

/** A weighted directed edge used during construction. */
struct Edge
{
    VertexId src = 0;
    VertexId dst = 0;
    Value weight = 1.0;

    friend bool
    operator==(const Edge &a, const Edge &b)
    {
        return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
    }
};

/**
 * Immutable directed graph.
 *
 * Edges are identified by their index in the out-CSR order (sorted by
 * source, then destination). The in-CSR mirrors each edge and remembers the
 * out-edge id so weights are shared.
 */
class DirectedGraph
{
  public:
    DirectedGraph() = default;

    /**
     * Build from CSR arrays. Intended for use by GraphBuilder; most callers
     * should go through GraphBuilder or the generators.
     */
    DirectedGraph(std::vector<EdgeId> out_offsets,
                  std::vector<VertexId> out_targets,
                  std::vector<Value> weights);

    /** Number of vertices. */
    VertexId numVertices() const
    {
        return out_offsets_.empty()
                   ? 0
                   : static_cast<VertexId>(out_offsets_.size() - 1);
    }

    /** Number of directed edges. */
    EdgeId numEdges() const { return out_targets_.size(); }

    /** Out-degree of @p v. */
    std::size_t
    outDegree(VertexId v) const
    {
        return static_cast<std::size_t>(out_offsets_[v + 1] -
                                        out_offsets_[v]);
    }

    /** In-degree of @p v. */
    std::size_t
    inDegree(VertexId v) const
    {
        return static_cast<std::size_t>(in_offsets_[v + 1] -
                                        in_offsets_[v]);
    }

    /** Total degree (in + out) of @p v. */
    std::size_t degree(VertexId v) const
    {
        return outDegree(v) + inDegree(v);
    }

    /** Successors of @p v (CSR slice). */
    std::span<const VertexId>
    outNeighbors(VertexId v) const
    {
        return {out_targets_.data() + out_offsets_[v],
                out_targets_.data() + out_offsets_[v + 1]};
    }

    /** Predecessors of @p v (CSR slice). */
    std::span<const VertexId>
    inNeighbors(VertexId v) const
    {
        return {in_sources_.data() + in_offsets_[v],
                in_sources_.data() + in_offsets_[v + 1]};
    }

    /** Global edge id of the @p k-th out-edge of @p v. */
    EdgeId outEdgeId(VertexId v, std::size_t k) const
    {
        return out_offsets_[v] + k;
    }

    /** Out-edge id corresponding to the @p k-th in-edge of @p v. */
    EdgeId
    inEdgeId(VertexId v, std::size_t k) const
    {
        return in_edge_ids_[in_offsets_[v] + k];
    }

    /** Destination vertex of edge @p e. */
    VertexId edgeTarget(EdgeId e) const { return out_targets_[e]; }

    /** Source vertex of edge @p e. */
    VertexId edgeSource(EdgeId e) const { return edge_sources_[e]; }

    /** Weight of edge @p e. */
    Value edgeWeight(EdgeId e) const { return weights_[e]; }

    /** First out-edge id of @p v (CSR offset). */
    EdgeId outOffset(VertexId v) const { return out_offsets_[v]; }

    /** True if a directed edge src->dst exists (binary search). */
    bool hasEdge(VertexId src, VertexId dst) const;

    /** Edge id of src->dst, or kInvalidEdge when absent (binary
     *  search; @p src may be >= numVertices(), which returns absent). */
    EdgeId findEdge(VertexId src, VertexId dst) const;

    /** All edges in out-CSR order. */
    std::vector<Edge> edgeList() const;

    /** Approximate heap footprint in bytes (used by traffic models). */
    std::size_t storageBytes() const;

  private:
    void buildInCsr();

    std::vector<EdgeId> out_offsets_;
    std::vector<VertexId> out_targets_;
    std::vector<VertexId> edge_sources_;
    std::vector<Value> weights_;

    std::vector<EdgeId> in_offsets_;
    std::vector<VertexId> in_sources_;
    std::vector<EdgeId> in_edge_ids_;
};

} // namespace digraph::graph
