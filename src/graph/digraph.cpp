#include "graph/digraph.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace digraph::graph {

DirectedGraph::DirectedGraph(std::vector<EdgeId> out_offsets,
                             std::vector<VertexId> out_targets,
                             std::vector<Value> weights)
    : out_offsets_(std::move(out_offsets)),
      out_targets_(std::move(out_targets)),
      weights_(std::move(weights))
{
    if (out_offsets_.empty())
        out_offsets_.push_back(0);
    if (weights_.empty())
        weights_.assign(out_targets_.size(), 1.0);
    if (weights_.size() != out_targets_.size())
        panic("DirectedGraph: weight array size mismatch");
    if (out_offsets_.back() != out_targets_.size())
        panic("DirectedGraph: CSR offsets do not cover the edge array");

    edge_sources_.resize(out_targets_.size());
    const VertexId n = numVertices();
    for (VertexId v = 0; v < n; ++v) {
        for (EdgeId e = out_offsets_[v]; e < out_offsets_[v + 1]; ++e)
            edge_sources_[e] = v;
    }
    buildInCsr();
}

void
DirectedGraph::buildInCsr()
{
    const VertexId n = numVertices();
    const EdgeId m = numEdges();
    in_offsets_.assign(n + 1, 0);
    for (EdgeId e = 0; e < m; ++e)
        ++in_offsets_[out_targets_[e] + 1];
    for (VertexId v = 0; v < n; ++v)
        in_offsets_[v + 1] += in_offsets_[v];

    in_sources_.resize(m);
    in_edge_ids_.resize(m);
    std::vector<EdgeId> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (EdgeId e = 0; e < m; ++e) {
        const VertexId dst = out_targets_[e];
        const EdgeId slot = cursor[dst]++;
        in_sources_[slot] = edge_sources_[e];
        in_edge_ids_[slot] = e;
    }
}

bool
DirectedGraph::hasEdge(VertexId src, VertexId dst) const
{
    const auto nbrs = outNeighbors(src);
    return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

EdgeId
DirectedGraph::findEdge(VertexId src, VertexId dst) const
{
    if (src >= numVertices())
        return kInvalidEdge;
    const auto nbrs = outNeighbors(src);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), dst);
    if (it == nbrs.end() || *it != dst)
        return kInvalidEdge;
    return out_offsets_[src] + static_cast<EdgeId>(it - nbrs.begin());
}

std::vector<Edge>
DirectedGraph::edgeList() const
{
    std::vector<Edge> edges;
    edges.reserve(numEdges());
    for (EdgeId e = 0; e < numEdges(); ++e)
        edges.push_back({edge_sources_[e], out_targets_[e], weights_[e]});
    return edges;
}

std::size_t
DirectedGraph::storageBytes() const
{
    return out_offsets_.size() * sizeof(EdgeId) +
           out_targets_.size() * sizeof(VertexId) +
           edge_sources_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(Value) +
           in_offsets_.size() * sizeof(EdgeId) +
           in_sources_.size() * sizeof(VertexId) +
           in_edge_ids_.size() * sizeof(EdgeId);
}

} // namespace digraph::graph
