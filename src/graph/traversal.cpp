#include "graph/traversal.hpp"

#include <algorithm>
#include <deque>

#include "common/logging.hpp"

namespace digraph::graph {

std::vector<std::uint32_t>
bfsDistances(const DirectedGraph &g, VertexId src)
{
    std::vector<std::uint32_t> dist(g.numVertices(), kUnreachable);
    std::deque<VertexId> queue;
    dist[src] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
        const VertexId v = queue.front();
        queue.pop_front();
        for (const VertexId w : g.outNeighbors(v)) {
            if (dist[w] == kUnreachable) {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

std::vector<VertexId>
topologicalOrder(const DirectedGraph &g)
{
    const VertexId n = g.numVertices();
    std::vector<EdgeId> in_deg(n, 0);
    for (VertexId v = 0; v < n; ++v)
        in_deg[v] = g.inDegree(v);

    std::vector<VertexId> order;
    order.reserve(n);
    std::deque<VertexId> ready;
    for (VertexId v = 0; v < n; ++v) {
        if (in_deg[v] == 0)
            ready.push_back(v);
    }
    while (!ready.empty()) {
        const VertexId v = ready.front();
        ready.pop_front();
        order.push_back(v);
        for (const VertexId w : g.outNeighbors(v)) {
            if (--in_deg[w] == 0)
                ready.push_back(w);
        }
    }
    if (order.size() != n)
        return {};
    return order;
}

bool
isAcyclic(const DirectedGraph &g)
{
    return g.numVertices() == 0 || !topologicalOrder(g).empty();
}

std::vector<std::uint32_t>
dagLayers(const DirectedGraph &g)
{
    const auto order = topologicalOrder(g);
    if (g.numVertices() > 0 && order.empty())
        panic("dagLayers: graph has a cycle");
    std::vector<std::uint32_t> layer(g.numVertices(), 0);
    for (const VertexId v : order) {
        for (const VertexId w : g.outNeighbors(v))
            layer[w] = std::max(layer[w], layer[v] + 1);
    }
    return layer;
}

std::vector<VertexId>
reachableFrom(const DirectedGraph &g, VertexId src)
{
    const auto dist = bfsDistances(g, src);
    std::vector<VertexId> out;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (dist[v] != kUnreachable)
            out.push_back(v);
    }
    return out;
}

} // namespace digraph::graph
