#include "graph/properties.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "graph/scc.hpp"
#include "graph/traversal.hpp"

namespace digraph::graph {

double
bidirectionalRatio(const DirectedGraph &g)
{
    if (g.numEdges() == 0)
        return 0.0;
    EdgeId bidir = 0;
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        if (g.hasEdge(g.edgeTarget(e), g.edgeSource(e)))
            ++bidir;
    }
    return static_cast<double>(bidir) / static_cast<double>(g.numEdges());
}

GraphProperties
measureProperties(const DirectedGraph &g, unsigned distance_samples,
                  std::uint64_t seed)
{
    GraphProperties p;
    p.num_vertices = g.numVertices();
    p.num_edges = g.numEdges();
    if (p.num_vertices == 0)
        return p;

    p.avg_degree = static_cast<double>(p.num_edges) /
                   static_cast<double>(p.num_vertices);
    for (VertexId v = 0; v < p.num_vertices; ++v) {
        p.max_out_degree = std::max(p.max_out_degree, g.outDegree(v));
        p.max_in_degree = std::max(p.max_in_degree, g.inDegree(v));
    }

    if (distance_samples > 0) {
        SplitMix64 rng(seed);
        double total = 0.0;
        std::uint64_t pairs = 0;
        for (unsigned s = 0; s < distance_samples; ++s) {
            const auto src = static_cast<VertexId>(
                rng.nextBounded(p.num_vertices));
            const auto dist = bfsDistances(g, src);
            for (VertexId v = 0; v < p.num_vertices; ++v) {
                if (v != src && dist[v] != kUnreachable) {
                    total += dist[v];
                    ++pairs;
                }
            }
        }
        p.avg_distance = pairs ? total / static_cast<double>(pairs) : 0.0;
    }

    const SccResult scc = computeScc(g);
    p.num_sccs = scc.num_components;
    p.giant_scc_fraction = scc.giantFraction();
    p.bidirectional_ratio = bidirectionalRatio(g);
    return p;
}

std::string
describe(const GraphProperties &p)
{
    std::ostringstream oss;
    oss << "V=" << p.num_vertices << " E=" << p.num_edges
        << " avgDeg=" << p.avg_degree << " avgDist=" << p.avg_distance
        << " sccs=" << p.num_sccs << " giantSCC="
        << p.giant_scc_fraction * 100.0 << "% bidir="
        << p.bidirectional_ratio * 100.0 << "%";
    return oss.str();
}

} // namespace digraph::graph
