#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/logging.hpp"
#include "graph/builder.hpp"

namespace digraph::graph {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x44694772'61424947ULL; // "DiGraBIG"
/** Bumped when the record layout changes; version 2 added this field
 *  (version-1 files, which had none, are rejected up front instead of
 *  being misparsed as garbage counts). */
constexpr std::uint64_t kBinaryVersion = 2;

} // namespace

DirectedGraph
loadEdgeListText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadEdgeListText: cannot open ", path);

    GraphBuilder builder;
    std::string line;
    std::uint64_t lineno = 0;
    // Parse ids as signed 64-bit so a negative or >32-bit id is a
    // loud diagnostic instead of a silent wrap into a (possibly huge)
    // valid VertexId.
    constexpr long long kMaxId = std::numeric_limits<VertexId>::max();
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        long long src, dst;
        if (!(iss >> src >> dst))
            continue; // header / malformed / missing-destination line
        if (src < 0 || dst < 0) {
            fatal("loadEdgeListText: ", path, ":", lineno,
                  ": negative vertex id in '", line, "'");
        }
        if (src > kMaxId || dst > kMaxId) {
            fatal("loadEdgeListText: ", path, ":", lineno,
                  ": vertex id overflows 32-bit ids in '", line, "'");
        }
        Value w = 1.0;
        // A failed extraction value-initializes the target (C++11
        // num_get), so parse into a temporary and keep the default
        // weight unless a weight column actually parsed.
        if (Value parsed; iss >> parsed)
            w = parsed;
        builder.addEdge(static_cast<VertexId>(src),
                        static_cast<VertexId>(dst), w);
    }
    return builder.build();
}

void
saveEdgeListText(const DirectedGraph &g, const std::string &path)
{
    AtomicFileWriter writer(path);
    if (!writer.ok())
        fatal("saveEdgeListText: cannot open ", path);
    std::ofstream &out = writer.stream();
    out << "# vertices " << g.numVertices() << " edges " << g.numEdges()
        << "\n";
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        out << g.edgeSource(e) << ' ' << g.edgeTarget(e) << ' '
            << g.edgeWeight(e) << "\n";
    }
    if (!writer.commit())
        fatal("saveEdgeListText: write failed for ", path);
}

DirectedGraph
loadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("loadBinary: cannot open ", path);
    std::uint64_t magic = 0, version = 0, n = 0, m = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&version), sizeof(version));
    in.read(reinterpret_cast<char *>(&n), sizeof(n));
    in.read(reinterpret_cast<char *>(&m), sizeof(m));
    if (!in || magic != kBinaryMagic)
        fatal("loadBinary: ", path, " is not a DiGraph binary file");
    if (version != kBinaryVersion) {
        fatal("loadBinary: ", path, " has format version ", version,
              ", expected ", kBinaryVersion);
    }
    if (n > std::numeric_limits<VertexId>::max())
        fatal("loadBinary: ", path, " vertex count ", n,
              " overflows VertexId");

    GraphBuilder builder(static_cast<VertexId>(n));
    builder.setDeduplicate(false);
    builder.setRemoveSelfLoops(false);
    for (std::uint64_t i = 0; i < m; ++i) {
        std::uint32_t src, dst;
        double w;
        in.read(reinterpret_cast<char *>(&src), sizeof(src));
        in.read(reinterpret_cast<char *>(&dst), sizeof(dst));
        in.read(reinterpret_cast<char *>(&w), sizeof(w));
        if (!in)
            fatal("loadBinary: truncated file ", path);
        builder.addEdge(src, dst, w);
    }
    return builder.build();
}

void
saveBinary(const DirectedGraph &g, const std::string &path)
{
    AtomicFileWriter writer(path, std::ios::binary);
    if (!writer.ok())
        fatal("saveBinary: cannot open ", path);
    std::ofstream &out = writer.stream();
    const std::uint64_t magic = kBinaryMagic;
    const std::uint64_t version = kBinaryVersion;
    const std::uint64_t n = g.numVertices();
    const std::uint64_t m = g.numEdges();
    if (n > std::numeric_limits<std::uint32_t>::max())
        fatal("saveBinary: vertex count ", n,
              " overflows the 32-bit on-disk id");
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&version), sizeof(version));
    out.write(reinterpret_cast<const char *>(&n), sizeof(n));
    out.write(reinterpret_cast<const char *>(&m), sizeof(m));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const std::uint32_t src = g.edgeSource(e);
        const std::uint32_t dst = g.edgeTarget(e);
        const double w = g.edgeWeight(e);
        out.write(reinterpret_cast<const char *>(&src), sizeof(src));
        out.write(reinterpret_cast<const char *>(&dst), sizeof(dst));
        out.write(reinterpret_cast<const char *>(&w), sizeof(w));
    }
    // commit() re-checks the stream after the flush, so a failed write
    // (ENOSPC included) unlinks the temp and never touches @p path.
    if (!writer.commit())
        fatal("saveBinary: write failed for ", path);
}

} // namespace digraph::graph
