#include "graph/io.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "graph/builder.hpp"

namespace digraph::graph {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x44694772'61424947ULL; // "DiGraBIG"

} // namespace

DirectedGraph
loadEdgeListText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadEdgeListText: cannot open ", path);

    GraphBuilder builder;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        VertexId src, dst;
        if (!(iss >> src >> dst))
            continue;
        Value w = 1.0;
        iss >> w;
        builder.addEdge(src, dst, w);
    }
    return builder.build();
}

void
saveEdgeListText(const DirectedGraph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveEdgeListText: cannot open ", path);
    out << "# vertices " << g.numVertices() << " edges " << g.numEdges()
        << "\n";
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        out << g.edgeSource(e) << ' ' << g.edgeTarget(e) << ' '
            << g.edgeWeight(e) << "\n";
    }
}

DirectedGraph
loadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("loadBinary: cannot open ", path);
    std::uint64_t magic = 0, n = 0, m = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&n), sizeof(n));
    in.read(reinterpret_cast<char *>(&m), sizeof(m));
    if (!in || magic != kBinaryMagic)
        fatal("loadBinary: ", path, " is not a DiGraph binary file");

    GraphBuilder builder(static_cast<VertexId>(n));
    builder.setDeduplicate(false);
    builder.setRemoveSelfLoops(false);
    for (std::uint64_t i = 0; i < m; ++i) {
        std::uint32_t src, dst;
        double w;
        in.read(reinterpret_cast<char *>(&src), sizeof(src));
        in.read(reinterpret_cast<char *>(&dst), sizeof(dst));
        in.read(reinterpret_cast<char *>(&w), sizeof(w));
        if (!in)
            fatal("loadBinary: truncated file ", path);
        builder.addEdge(src, dst, w);
    }
    return builder.build();
}

void
saveBinary(const DirectedGraph &g, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("saveBinary: cannot open ", path);
    const std::uint64_t magic = kBinaryMagic;
    const std::uint64_t n = g.numVertices();
    const std::uint64_t m = g.numEdges();
    out.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char *>(&n), sizeof(n));
    out.write(reinterpret_cast<const char *>(&m), sizeof(m));
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        const std::uint32_t src = g.edgeSource(e);
        const std::uint32_t dst = g.edgeTarget(e);
        const double w = g.edgeWeight(e);
        out.write(reinterpret_cast<const char *>(&src), sizeof(src));
        out.write(reinterpret_cast<const char *>(&dst), sizeof(dst));
        out.write(reinterpret_cast<const char *>(&w), sizeof(w));
    }
}

} // namespace digraph::graph
