#include "graph/transform.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace digraph::graph {

DirectedGraph
reverse(const DirectedGraph &g)
{
    GraphBuilder builder(g.numVertices());
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        builder.addEdge(g.edgeTarget(e), g.edgeSource(e), g.edgeWeight(e));
    return builder.build();
}

DirectedGraph
withBidirectionalRatio(const DirectedGraph &g, double target_ratio,
                       std::uint64_t seed)
{
    target_ratio = std::clamp(target_ratio, 0.0, 1.0);

    // Collect one-directional edges (candidates for a reverse partner).
    std::vector<EdgeId> singles;
    EdgeId bidir = 0;
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        if (g.hasEdge(g.edgeTarget(e), g.edgeSource(e)))
            ++bidir;
        else
            singles.push_back(e);
    }

    // Adding a reverse to a single edge turns 1 single edge into 2
    // bidirectional edges while growing the edge count by 1. Solve for the
    // number k of singles to pair up:
    //   (bidir + 2k) / (m + k) >= target.
    const double m = static_cast<double>(g.numEdges());
    const double b = static_cast<double>(bidir);
    double k_needed = 0.0;
    if (target_ratio > 0.0 && 2.0 - target_ratio > 0.0)
        k_needed = (target_ratio * m - b) / (2.0 - target_ratio);
    auto k = static_cast<std::size_t>(std::max(0.0, std::ceil(k_needed)));
    k = std::min(k, singles.size());

    // Fisher-Yates prefix shuffle to pick k singles uniformly.
    SplitMix64 rng(seed);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j =
            i + rng.nextBounded(singles.size() - i);
        std::swap(singles[i], singles[j]);
    }

    GraphBuilder builder(g.numVertices());
    for (EdgeId e = 0; e < g.numEdges(); ++e)
        builder.addEdge(g.edgeSource(e), g.edgeTarget(e), g.edgeWeight(e));
    for (std::size_t i = 0; i < k; ++i) {
        const EdgeId e = singles[i];
        builder.addEdge(g.edgeTarget(e), g.edgeSource(e), g.edgeWeight(e));
    }
    return builder.build();
}

DirectedGraph
inducedSubgraph(const DirectedGraph &g,
                const std::vector<VertexId> &vertices)
{
    std::unordered_map<VertexId, VertexId> remap;
    remap.reserve(vertices.size());
    for (std::size_t i = 0; i < vertices.size(); ++i)
        remap.emplace(vertices[i], static_cast<VertexId>(i));

    GraphBuilder builder(static_cast<VertexId>(vertices.size()));
    for (std::size_t i = 0; i < vertices.size(); ++i) {
        const VertexId v = vertices[i];
        const auto nbrs = g.outNeighbors(v);
        for (std::size_t kk = 0; kk < nbrs.size(); ++kk) {
            const auto it = remap.find(nbrs[kk]);
            if (it != remap.end()) {
                builder.addEdge(static_cast<VertexId>(i), it->second,
                                g.edgeWeight(g.outEdgeId(v, kk)));
            }
        }
    }
    return builder.build();
}

DirectedGraph
relabel(const DirectedGraph &g, const std::vector<VertexId> &perm)
{
    if (perm.size() != g.numVertices())
        panic("relabel: permutation size mismatch");
    GraphBuilder builder(g.numVertices());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        builder.addEdge(perm[g.edgeSource(e)], perm[g.edgeTarget(e)],
                        g.edgeWeight(e));
    }
    return builder.build();
}

DirectedGraph
withIsolatedVertices(const DirectedGraph &g, VertexId num_vertices)
{
    const VertexId n = std::max(g.numVertices(), num_vertices);
    std::vector<EdgeId> offsets(n + 1, g.numEdges());
    std::vector<VertexId> targets(g.numEdges());
    std::vector<Value> weights(g.numEdges());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        offsets[v] = g.outOffset(v);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        targets[e] = g.edgeTarget(e);
        weights[e] = g.edgeWeight(e);
    }
    return DirectedGraph(std::move(offsets), std::move(targets),
                        std::move(weights));
}

} // namespace digraph::graph
