/**
 * @file
 * Loaders/savers for common public graph-exchange formats, so the bench
 * harnesses and the CLI can run on real datasets (e.g. the LAW graphs
 * the paper uses, once converted):
 *
 *  - MatrixMarket coordinate format (.mtx) — pattern or weighted,
 *    general or symmetric;
 *  - METIS graph format (.graph) — adjacency-list lines, treated as
 *    directed arcs;
 *  - DIMACS shortest-path format (.gr) — `a u v w` arc lines.
 */

#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Load a MatrixMarket coordinate file. fatal() on malformed input. */
DirectedGraph loadMatrixMarket(const std::string &path);

/** Save as MatrixMarket coordinate (general, real weights). */
void saveMatrixMarket(const DirectedGraph &g, const std::string &path);

/** Load a METIS .graph file (1-indexed adjacency lists). Supports the
 *  plain and edge-weighted ("fmt" flag 1) variants. */
DirectedGraph loadMetis(const std::string &path);

/** Load a DIMACS .gr shortest-path file. */
DirectedGraph loadDimacs(const std::string &path);

/**
 * Load any supported format, dispatching on the file extension:
 * .mtx, .graph (METIS), .gr (DIMACS), .bin (native binary), anything
 * else = plain text edge list.
 */
DirectedGraph loadAnyFormat(const std::string &path);

} // namespace digraph::graph
