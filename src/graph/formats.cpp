#include "graph/formats.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace digraph::graph {

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

DirectedGraph
loadMatrixMarket(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadMatrixMarket: cannot open ", path);

    std::string header;
    if (!std::getline(in, header) ||
        header.rfind("%%MatrixMarket", 0) != 0) {
        fatal("loadMatrixMarket: ", path, " missing %%MatrixMarket "
              "banner");
    }
    const std::string lowered = toLower(header);
    const bool pattern = lowered.find("pattern") != std::string::npos;
    const bool symmetric =
        lowered.find("symmetric") != std::string::npos;
    if (lowered.find("coordinate") == std::string::npos)
        fatal("loadMatrixMarket: only coordinate matrices supported");

    std::string line;
    // Skip comments, then read the size line.
    std::uint64_t rows = 0, cols = 0, entries = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream iss(line);
        if (!(iss >> rows >> cols >> entries))
            fatal("loadMatrixMarket: malformed size line in ", path);
        break;
    }

    GraphBuilder builder(
        static_cast<VertexId>(std::max(rows, cols)));
    std::uint64_t seen = 0;
    while (seen < entries && std::getline(in, line)) {
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t r, c;
        double w = 1.0;
        if (!(iss >> r >> c))
            fatal("loadMatrixMarket: malformed entry in ", path);
        if (!pattern)
            iss >> w;
        if (r == 0 || c == 0)
            fatal("loadMatrixMarket: indices are 1-based; got 0");
        builder.addEdge(static_cast<VertexId>(r - 1),
                        static_cast<VertexId>(c - 1), w);
        if (symmetric && r != c) {
            builder.addEdge(static_cast<VertexId>(c - 1),
                            static_cast<VertexId>(r - 1), w);
        }
        ++seen;
    }
    if (seen != entries) {
        fatal("loadMatrixMarket: expected ", entries, " entries, got ",
              seen);
    }
    return builder.build();
}

void
saveMatrixMarket(const DirectedGraph &g, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("saveMatrixMarket: cannot open ", path);
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << g.numVertices() << ' ' << g.numVertices() << ' '
        << g.numEdges() << "\n";
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        out << g.edgeSource(e) + 1 << ' ' << g.edgeTarget(e) + 1 << ' '
            << g.edgeWeight(e) << "\n";
    }
}

DirectedGraph
loadMetis(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadMetis: cannot open ", path);

    std::string line;
    std::uint64_t n = 0, m = 0;
    unsigned fmt = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '%')
            continue;
        std::istringstream iss(line);
        if (!(iss >> n >> m))
            fatal("loadMetis: malformed header in ", path);
        iss >> fmt;
        break;
    }
    const bool edge_weights = fmt == 1 || fmt == 11;

    GraphBuilder builder(static_cast<VertexId>(n));
    builder.setDeduplicate(false);
    VertexId v = 0;
    while (v < n && std::getline(in, line)) {
        if (!line.empty() && line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t target;
        while (iss >> target) {
            if (target == 0 || target > n)
                fatal("loadMetis: vertex index ", target,
                      " out of range");
            double w = 1.0;
            if (edge_weights && !(iss >> w))
                fatal("loadMetis: missing edge weight in ", path);
            builder.addEdge(v, static_cast<VertexId>(target - 1), w);
        }
        ++v;
    }
    if (v != n)
        fatal("loadMetis: expected ", n, " adjacency lines, got ", v);
    return builder.build();
}

DirectedGraph
loadDimacs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("loadDimacs: cannot open ", path);

    GraphBuilder builder;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream iss(line);
        char kind;
        iss >> kind;
        if (kind == 'c')
            continue;
        if (kind == 'p') {
            std::string sp;
            std::uint64_t n = 0, m = 0;
            iss >> sp >> n >> m;
            builder = GraphBuilder(static_cast<VertexId>(n));
            continue;
        }
        if (kind == 'a') {
            std::uint64_t u, v;
            double w = 1.0;
            if (!(iss >> u >> v >> w))
                fatal("loadDimacs: malformed arc line in ", path);
            if (u == 0 || v == 0)
                fatal("loadDimacs: indices are 1-based; got 0");
            builder.addEdge(static_cast<VertexId>(u - 1),
                            static_cast<VertexId>(v - 1), w);
        }
    }
    return builder.build();
}

DirectedGraph
loadAnyFormat(const std::string &path)
{
    const std::string lowered = toLower(path);
    if (endsWith(lowered, ".mtx"))
        return loadMatrixMarket(path);
    if (endsWith(lowered, ".graph"))
        return loadMetis(path);
    if (endsWith(lowered, ".gr"))
        return loadDimacs(path);
    if (endsWith(lowered, ".bin"))
        return loadBinary(path);
    return loadEdgeListText(path);
}

} // namespace digraph::graph
