#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "graph/builder.hpp"

namespace digraph::graph {

namespace {

/** Skewed vertex pick: concentrates on low ids for skew > 1. */
VertexId
skewedPick(SplitMix64 &rng, VertexId n, double skew)
{
    const double u = rng.nextDouble();
    const double x = std::pow(u, skew);
    auto v = static_cast<VertexId>(x * n);
    return std::min<VertexId>(v, n - 1);
}

} // namespace

DirectedGraph
generate(const GeneratorConfig &config)
{
    const VertexId n = config.num_vertices;
    if (n == 0)
        return GraphBuilder(0).build();

    SplitMix64 rng(config.seed);
    GraphBuilder builder(n);

    auto weight = [&]() {
        return config.weight_min +
               rng.nextDouble() * (config.weight_max - config.weight_min);
    };

    // Core id range [0, core_hi): only edges fully inside it may point
    // backward, so the giant SCC covers roughly scc_core_fraction of the
    // vertices while the rest of the graph forms the DAG downstream of it
    // (a bow-tie with the hub vertices — low ids under the skewed pick —
    // inside the giant SCC, as in real web/social graphs).
    const double core_frac =
        std::clamp(config.scc_core_fraction, 0.0, 1.0);
    const auto core_hi = static_cast<VertexId>(n * core_frac);
    auto in_core = [&](VertexId v) { return v < core_hi; };

    // Forward backbone so that low-id vertices reach most of the graph.
    for (VertexId v = 0; v + 1 < n; ++v) {
        if (rng.nextBool(config.backbone_prob))
            builder.addEdge(v, v + 1, weight());
    }

    for (EdgeId e = 0; e < config.num_edges; ++e) {
        VertexId a = skewedPick(rng, n, config.degree_skew);
        VertexId b;
        if (rng.nextBool(config.locality)) {
            const VertexId w = std::max<VertexId>(1, config.locality_window);
            const auto delta = static_cast<std::int64_t>(
                rng.nextBounded(2 * w + 1)) - static_cast<std::int64_t>(w);
            auto raw = static_cast<std::int64_t>(a) + delta;
            raw = std::clamp<std::int64_t>(raw, 0, n - 1);
            b = static_cast<VertexId>(raw);
        } else {
            b = skewedPick(rng, n, config.degree_skew);
        }
        if (a == b)
            continue;
        VertexId lo = std::min(a, b), hi = std::max(a, b);
        const bool may_reverse = in_core(lo) && in_core(hi);
        if (!may_reverse || rng.nextBool(config.forward_bias))
            builder.addEdge(lo, hi, weight());
        else
            builder.addEdge(hi, lo, weight());
    }
    return builder.build();
}

DirectedGraph
makeChain(VertexId n, Value weight)
{
    GraphBuilder builder(n);
    for (VertexId v = 0; v + 1 < n; ++v)
        builder.addEdge(v, v + 1, weight);
    return builder.build();
}

DirectedGraph
makeCycle(VertexId n, Value weight)
{
    GraphBuilder builder(n);
    for (VertexId v = 0; v < n; ++v)
        builder.addEdge(v, (v + 1) % n, weight);
    return builder.build();
}

DirectedGraph
makeStar(VertexId n, bool out)
{
    GraphBuilder builder(n);
    for (VertexId v = 1; v < n; ++v) {
        if (out)
            builder.addEdge(0, v);
        else
            builder.addEdge(v, 0);
    }
    return builder.build();
}

DirectedGraph
makeBinaryTree(VertexId n)
{
    GraphBuilder builder(n);
    for (VertexId v = 1; v < n; ++v)
        builder.addEdge((v - 1) / 2, v);
    return builder.build();
}

DirectedGraph
makeRandomDag(VertexId n, EdgeId m, std::uint64_t seed)
{
    SplitMix64 rng(seed);
    GraphBuilder builder(n);
    for (EdgeId e = 0; e < m; ++e) {
        const VertexId a = static_cast<VertexId>(rng.nextBounded(n));
        const VertexId b = static_cast<VertexId>(rng.nextBounded(n));
        if (a == b)
            continue;
        builder.addEdge(std::min(a, b), std::max(a, b),
                        1.0 + rng.nextDouble() * 9.0);
    }
    return builder.build();
}

DirectedGraph
makeGrid(VertexId rows, VertexId cols)
{
    GraphBuilder builder(rows * cols);
    for (VertexId r = 0; r < rows; ++r) {
        for (VertexId c = 0; c < cols; ++c) {
            const VertexId v = r * cols + c;
            if (c + 1 < cols)
                builder.addEdge(v, v + 1);
            if (r + 1 < rows)
                builder.addEdge(v, v + cols);
        }
    }
    return builder.build();
}

const std::vector<Dataset> &
allDatasets()
{
    static const std::vector<Dataset> all = {
        Dataset::dblp,     Dataset::cnr,  Dataset::ljournal,
        Dataset::webbase,  Dataset::it04, Dataset::twitter,
    };
    return all;
}

std::string
datasetName(Dataset d)
{
    switch (d) {
      case Dataset::dblp:     return "dblp";
      case Dataset::cnr:      return "cnr";
      case Dataset::ljournal: return "ljournal";
      case Dataset::webbase:  return "webbase";
      case Dataset::it04:     return "it04";
      case Dataset::twitter:  return "twitter";
    }
    return "?";
}

GeneratorConfig
datasetConfig(Dataset d, double scale)
{
    // Stand-ins are scaled versions of Table 1: average degree matches the
    // paper; locality/window tune A_Dis (relative ordering preserved:
    // cnr/webbase/it04 long, twitter/ljournal short); forward_bias tunes
    // the giant-SCC share (Fig 2d: 69%/34%/78%/46%/72%/80%).
    GeneratorConfig c;
    switch (d) {
      case Dataset::dblp:
        // citation-like: sparse, medium distance, giant SCC ~69%
        c.num_vertices = 16000;
        c.num_edges = 64000;
        c.degree_skew = 1.6;
        c.locality = 0.65;
        c.locality_window = 40;
        c.forward_bias = 0.56;
        c.scc_core_fraction = 0.69;
        c.seed = 101;
        break;
      case Dataset::cnr:
        // web crawl: long distance, small giant SCC ~34%
        c.num_vertices = 16000;
        c.num_edges = 144000;
        c.degree_skew = 2.2;
        c.locality = 0.92;
        c.locality_window = 18;
        c.forward_bias = 0.68;
        c.scc_core_fraction = 0.34;
        c.seed = 202;
        break;
      case Dataset::ljournal:
        // social: dense-ish, short distance, giant SCC ~78%
        c.num_vertices = 32000;
        c.num_edges = 448000;
        c.degree_skew = 1.9;
        c.locality = 0.25;
        c.locality_window = 80;
        c.forward_bias = 0.52;
        c.scc_core_fraction = 0.78;
        c.seed = 303;
        break;
      case Dataset::webbase:
        // large web graph: long distance, giant SCC ~46%
        c.num_vertices = 48000;
        c.num_edges = 380000;
        c.degree_skew = 2.1;
        c.locality = 0.90;
        c.locality_window = 22;
        c.forward_bias = 0.62;
        c.scc_core_fraction = 0.46;
        c.seed = 404;
        break;
      case Dataset::it04:
        // dense web graph: long distance, giant SCC ~72%
        c.num_vertices = 32000;
        c.num_edges = 860000;
        c.degree_skew = 2.0;
        c.locality = 0.88;
        c.locality_window = 30;
        c.forward_bias = 0.55;
        c.scc_core_fraction = 0.72;
        c.seed = 505;
        break;
      case Dataset::twitter:
        // social: very dense, very short distance, giant SCC ~80%
        c.num_vertices = 24000;
        c.num_edges = 820000;
        c.degree_skew = 2.3;
        c.locality = 0.05;
        c.locality_window = 100;
        c.forward_bias = 0.51;
        c.scc_core_fraction = 0.80;
        c.seed = 606;
        break;
    }
    if (scale != 1.0) {
        c.num_vertices = std::max<VertexId>(
            16, static_cast<VertexId>(c.num_vertices * scale));
        c.num_edges = std::max<EdgeId>(
            16, static_cast<EdgeId>(c.num_edges * scale));
        c.locality_window = std::max<VertexId>(
            2, static_cast<VertexId>(c.locality_window * std::sqrt(scale)));
    }
    return c;
}

DirectedGraph
makeDataset(Dataset d, double scale)
{
    return generate(datasetConfig(d, scale));
}

} // namespace digraph::graph
