#include "graph/scc.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace digraph::graph {

SccId
SccResult::giantComponent() const
{
    if (sizes.empty())
        return kInvalidScc;
    return static_cast<SccId>(
        std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

double
SccResult::giantFraction() const
{
    if (component.empty())
        return 0.0;
    const SccId giant = giantComponent();
    return static_cast<double>(sizes[giant]) /
           static_cast<double>(component.size());
}

SccResult
computeScc(const DirectedGraph &g)
{
    const VertexId n = g.numVertices();
    SccResult result;
    result.component.assign(n, kInvalidScc);

    constexpr VertexId kUnvisited = kInvalidVertex;
    std::vector<VertexId> index(n, kUnvisited);
    std::vector<VertexId> lowlink(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<VertexId> stack;
    VertexId next_index = 0;

    // Explicit DFS stack: (vertex, next out-neighbor position).
    struct Frame
    {
        VertexId v;
        std::size_t child;
    };
    std::vector<Frame> dfs;

    for (VertexId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        dfs.push_back({root, 0});
        while (!dfs.empty()) {
            Frame &frame = dfs.back();
            const VertexId v = frame.v;
            if (frame.child == 0) {
                index[v] = lowlink[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = true;
            }
            const auto nbrs = g.outNeighbors(v);
            bool descended = false;
            while (frame.child < nbrs.size()) {
                const VertexId w = nbrs[frame.child++];
                if (index[w] == kUnvisited) {
                    dfs.push_back({w, 0});
                    descended = true;
                    break;
                } else if (on_stack[w]) {
                    lowlink[v] = std::min(lowlink[v], index[w]);
                }
            }
            if (descended)
                continue;

            // All children explored: close the frame.
            if (lowlink[v] == index[v]) {
                VertexId size = 0;
                for (;;) {
                    const VertexId w = stack.back();
                    stack.pop_back();
                    on_stack[w] = false;
                    result.component[w] = result.num_components;
                    ++size;
                    if (w == v)
                        break;
                }
                result.sizes.push_back(size);
                ++result.num_components;
            }
            dfs.pop_back();
            if (!dfs.empty()) {
                const VertexId parent = dfs.back().v;
                lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
            }
        }
    }
    return result;
}

DirectedGraph
condense(const DirectedGraph &g, const SccResult &scc)
{
    GraphBuilder builder(scc.num_components);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        const SccId cv = scc.component[v];
        for (const VertexId w : g.outNeighbors(v)) {
            const SccId cw = scc.component[w];
            if (cv != cw)
                builder.addEdge(cv, cw);
        }
    }
    return builder.build();
}

} // namespace digraph::graph
