/**
 * @file
 * Edge-list graph input/output (text and binary).
 *
 * Text format: one `src dst [weight]` triple per line; lines starting with
 * '#' or '%' are comments. Binary format: a small magic header followed by
 * the raw edge array — fast path for repeated bench runs.
 */

#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Load a text edge list. Calls fatal() if the file cannot be opened. */
DirectedGraph loadEdgeListText(const std::string &path);

/** Save as text edge list (weights included). */
void saveEdgeListText(const DirectedGraph &g, const std::string &path);

/** Load the binary format written by saveBinary(). */
DirectedGraph loadBinary(const std::string &path);

/** Save in binary format. */
void saveBinary(const DirectedGraph &g, const std::string &path);

} // namespace digraph::graph
