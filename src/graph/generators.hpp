/**
 * @file
 * Synthetic directed-graph generators.
 *
 * The paper evaluates on six LAW web/social graphs. Those inputs (and the
 * 4x K80 testbed) are not available here, so bench harnesses run on
 * synthetic stand-ins produced by a configurable generator whose three
 * structural knobs map onto the properties the paper's results depend on:
 *
 *  - degree_skew      -> power-law hubs (hot vertices / hot paths)
 *  - locality(+window)-> average distance between vertices (A_Dis, Table 1)
 *  - forward_bias     -> DAG-ness, i.e. the giant-SCC share (Fig 2d)
 *
 * Small deterministic shapes (chain, cycle, star, trees, DAGs) used by the
 * test suites also live here.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Tuning knobs for the random directed-graph generator. */
struct GeneratorConfig
{
    /** Number of vertices. */
    VertexId num_vertices = 1000;
    /** Number of random edges to draw (final count can be slightly lower
     *  after dedup/self-loop removal). */
    EdgeId num_edges = 5000;
    /** Power-law skew; larger concentrates endpoints on hub vertices.
     *  1.0 is uniform. */
    double degree_skew = 1.8;
    /** Probability that an edge lands within locality_window of its
     *  source (lattice-like structure -> longer average distance). */
    double locality = 0.5;
    /** Half-width of the locality window, in vertex-id space. */
    VertexId locality_window = 64;
    /** Fraction of vertices (a centered id range, the *core*) inside
     *  which edges may point backward — the core collapses into a giant
     *  SCC while everything outside stays acyclic, mirroring the
     *  bow-tie/giant-SCC structure of real directed graphs (Fig 2d). */
    double scc_core_fraction = 0.5;
    /** Probability that a core-internal edge is oriented from the lower
     *  id to the higher id. 0.5 = random orientation (dense cycles);
     *  edges outside the core are always forward. */
    double forward_bias = 0.5;
    /** Add a forward chain v -> v+1 with this probability per vertex, so
     *  SSSP sources reach most of the graph. */
    double backbone_prob = 0.8;
    /** Edge weights drawn uniformly from [weight_min, weight_max]. */
    double weight_min = 1.0;
    /** @copydoc weight_min */
    double weight_max = 10.0;
    /** RNG seed. */
    std::uint64_t seed = 42;
};

/** Generate a random directed graph per @p config. Deterministic in the
 *  seed. */
DirectedGraph generate(const GeneratorConfig &config);

/** Simple path 0 -> 1 -> ... -> n-1. */
DirectedGraph makeChain(VertexId n, Value weight = 1.0);

/** Simple cycle 0 -> 1 -> ... -> n-1 -> 0. */
DirectedGraph makeCycle(VertexId n, Value weight = 1.0);

/** Star: hub 0 with out-edges to 1..n-1 (out = true) or in-edges. */
DirectedGraph makeStar(VertexId n, bool out = true);

/** Complete binary out-tree with n vertices. */
DirectedGraph makeBinaryTree(VertexId n);

/** Random DAG: every edge goes from a lower to a higher id. */
DirectedGraph makeRandomDag(VertexId n, EdgeId m, std::uint64_t seed);

/** 2-D grid with rightward and downward edges (rows x cols vertices). */
DirectedGraph makeGrid(VertexId rows, VertexId cols);

/** The six paper datasets this repo substitutes with synthetic stand-ins
 *  (Table 1: dblp-2010, cnr-2000, ljournal-2008, webbase-2001, it-2004,
 *  twitter-2010). */
enum class Dataset { dblp, cnr, ljournal, webbase, it04, twitter };

/** All datasets, in the paper's order. */
const std::vector<Dataset> &allDatasets();

/** Short display name ("dblp", "cnr", ...). */
std::string datasetName(Dataset d);

/**
 * Generator configuration for a dataset stand-in.
 * @param scale Multiplies vertex and edge counts (default laptop-sized).
 */
GeneratorConfig datasetConfig(Dataset d, double scale = 1.0);

/** Generate the stand-in graph for @p d at @p scale. */
DirectedGraph makeDataset(Dataset d, double scale = 1.0);

} // namespace digraph::graph
