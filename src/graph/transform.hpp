/**
 * @file
 * Graph transformations: reversal, bidirectional-edge augmentation
 * (Fig 14's sweep), induced subgraphs, and relabeling.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace digraph::graph {

/** Reverse every edge. */
DirectedGraph reverse(const DirectedGraph &g);

/**
 * Add reverse edges to a random subset of one-directional edges until the
 * bidirectional ratio (fraction of edges whose reverse exists) reaches
 * @p target_ratio. Used by the Fig 14 sweep ("adding directed edges on
 * webbase"). A target of 1.0 makes the graph symmetric.
 */
DirectedGraph withBidirectionalRatio(const DirectedGraph &g,
                                     double target_ratio,
                                     std::uint64_t seed = 99);

/**
 * Induced subgraph on @p vertices. Vertex i of the result corresponds to
 * vertices[i] of the input.
 */
DirectedGraph inducedSubgraph(const DirectedGraph &g,
                              const std::vector<VertexId> &vertices);

/**
 * Relabel vertices: new id of v is perm[v].
 * @pre perm is a permutation of [0, numVertices).
 */
DirectedGraph relabel(const DirectedGraph &g,
                      const std::vector<VertexId> &perm);

/**
 * Copy of @p g grown to @p num_vertices by appending isolated vertices
 * (no-op when num_vertices <= g.numVertices()). Edge ids are preserved.
 * Used by the incremental preprocessing to extend the DAG sketch with
 * the SCC-vertices of freshly decomposed paths without re-sorting the
 * sketch's edge set.
 */
DirectedGraph withIsolatedVertices(const DirectedGraph &g,
                                   VertexId num_vertices);

} // namespace digraph::graph
