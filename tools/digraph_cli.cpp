/**
 * @file
 * Command-line driver: run any system x algorithm on a dataset stand-in
 * or a graph file, print the metrics report.
 *
 * Usage:
 *   digraph_cli --algo pagerank [--system digraph] [--gpus 4]
 *               (--dataset cnr [--scale 0.4] | --graph FILE)
 *               [--source V] [--k K] [--verbose]
 *               [--trace out.json] [--trace-csv out.csv]
 *               [--faults SPEC] [--verify]
 *               [--jobs "sssp:0,pagerank,wcc"]
 *               [--evolve-batches N] [--evolve-batch-size M]
 *               [--evolve-full-rebuild] [--evolve-seed S]
 *   digraph_cli --list-algorithms
 *
 * --jobs runs N concurrent jobs (comma-separated "name[:param]" specs)
 * over ONE shared substrate (digraph system only) and prints a per-job
 * report; --list-algorithms prints the factory registry.
 *
 * --faults takes a deterministic injection plan (digraph systems only),
 * e.g. "seed=7,device=1@50000,xfer=0.01,smx=0.3@20000x16"; --verify runs
 * the post-run invariant checker and aborts on violation.
 *
 * --evolve-batches drives the evolving engine (digraph systems only):
 * after a cold run, N batches of random edge insertions are applied,
 * each followed by a warm re-run; per-batch ingestion timings (graph
 * extension, preprocessing, engine build) are printed. Incremental
 * ingestion is the default; --evolve-full-rebuild switches to the full
 * per-batch rebuild baseline.
 *
 * Systems: digraph (default), digraph-t, digraph-w, gunrock, groute,
 *          sequential.
 * Formats for --graph: .mtx, .graph (METIS), .gr (DIMACS), .bin
 * (native), else plain edge list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "algorithms/factory.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/sssp.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "engine/digraph_engine.hpp"
#include "engine/evolving.hpp"
#include "engine/job_manager.hpp"
#include "graph/formats.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "metrics/trace.hpp"

namespace {

using namespace digraph;

struct Options
{
    std::string system = "digraph";
    std::string algo = "pagerank";
    std::string dataset;
    std::string graph_file;
    double scale = 0.4;
    unsigned gpus = 4;
    VertexId source = 0;
    unsigned k = 3;
    bool verbose = false;
    std::string trace_json;
    std::string trace_csv;
    std::string faults;
    bool verify = false;
    std::string jobs;
    std::size_t evolve_batches = 0;
    std::size_t evolve_batch_size = 512;
    bool evolve_full_rebuild = false;
    std::uint64_t evolve_seed = 4242;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --algo NAME [--system NAME] [--gpus N]\n"
        "          (--dataset NAME [--scale S] | --graph FILE)\n"
        "          [--source V] [--k K] [--verbose]\n"
        "          [--trace out.json] [--trace-csv out.csv]\n"
        "          [--faults SPEC] [--verify]\n"
        "          [--jobs \"sssp:0,pagerank,wcc\"]\n"
        "          [--evolve-batches N] [--evolve-batch-size M]\n"
        "          [--evolve-full-rebuild] [--evolve-seed S]\n"
        "       %s --list-algorithms\n"
        "algorithms: pagerank adsorption sssp kcore katz bfs wcc\n"
        "systems:    digraph digraph-t digraph-w gunrock groute "
        "sequential\n"
        "datasets:   dblp cnr ljournal webbase it04 twitter\n",
        argv0, argv0);
    std::exit(2);
}

/** Print the factory registry: one row per algorithm with its
 *  incremental-ingestion support and convergence epsilon. */
[[noreturn]] void
listAlgorithms()
{
    // Some algorithms precompute per-graph tables at construction; a
    // tiny generated graph serves as the probe instance.
    graph::GeneratorConfig c;
    c.num_vertices = 8;
    c.num_edges = 16;
    c.seed = 1;
    const graph::DirectedGraph g = graph::generate(c);
    std::printf("%-12s %-12s %s\n", "algorithm", "incremental",
                "epsilon");
    for (const auto &name : algorithms::allAlgorithmNames()) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        std::printf("%-12s %-12s %.3g\n", name.c_str(),
                    algo->supportsIncremental() ? "yes" : "no",
                    algo->epsilon());
    }
    std::exit(0);
}

Options
parse(int argc, char **argv)
{
    Options opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--system")
            opts.system = need(i);
        else if (arg == "--algo")
            opts.algo = need(i);
        else if (arg == "--dataset")
            opts.dataset = need(i);
        else if (arg == "--graph")
            opts.graph_file = need(i);
        else if (arg == "--scale")
            opts.scale = std::atof(need(i));
        else if (arg == "--gpus")
            opts.gpus = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--source")
            opts.source = static_cast<VertexId>(std::atol(need(i)));
        else if (arg == "--k")
            opts.k = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--verbose")
            opts.verbose = true;
        else if (arg == "--trace")
            opts.trace_json = need(i);
        else if (arg == "--trace-csv")
            opts.trace_csv = need(i);
        else if (arg == "--faults")
            opts.faults = need(i);
        else if (arg == "--verify")
            opts.verify = true;
        else if (arg == "--jobs")
            opts.jobs = need(i);
        else if (arg == "--list-algorithms")
            listAlgorithms();
        else if (arg == "--evolve-batches")
            opts.evolve_batches =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--evolve-batch-size")
            opts.evolve_batch_size =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--evolve-full-rebuild")
            opts.evolve_full_rebuild = true;
        else if (arg == "--evolve-seed")
            opts.evolve_seed =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        else
            usage(argv[0]);
    }
    if (opts.dataset.empty() == opts.graph_file.empty())
        usage(argv[0]); // exactly one input source
    return opts;
}

graph::DirectedGraph
loadInput(const Options &opts)
{
    if (!opts.graph_file.empty())
        return graph::loadAnyFormat(opts.graph_file);
    for (const auto d : graph::allDatasets()) {
        if (graph::datasetName(d) == opts.dataset)
            return graph::makeDataset(d, opts.scale);
    }
    fatal("unknown dataset '", opts.dataset, "'");
}

algorithms::AlgorithmPtr
makeAlgo(const Options &opts, const graph::DirectedGraph &g)
{
    if (opts.algo == "sssp")
        return std::make_shared<algorithms::Sssp>(opts.source);
    if (opts.algo == "kcore")
        return std::make_shared<algorithms::KCore>(opts.k);
    return algorithms::makeAlgorithm(opts.algo, g);
}

void
printReport(const metrics::RunReport &r, double preprocess_s)
{
    std::printf("system        %s\n", r.system.c_str());
    std::printf("algorithm     %s\n", r.algorithm.c_str());
    std::printf("gpus          %u\n", r.num_gpus);
    std::printf("partitions    %llu\n",
                static_cast<unsigned long long>(r.num_partitions));
    std::printf("updates       %llu\n",
                static_cast<unsigned long long>(r.vertex_updates));
    std::printf("edge procs    %llu\n",
                static_cast<unsigned long long>(r.edge_processings));
    std::printf("rounds        %llu\n",
                static_cast<unsigned long long>(r.rounds));
    std::printf("sim cycles    %.4g\n", r.sim_cycles);
    std::printf("utilization   %.1f%%\n", r.utilization * 100.0);
    std::printf("traffic       %.3f MB\n",
                static_cast<double>(r.trafficVolume()) / 1e6);
    std::printf("loaded-data   %.4f updates/slot\n",
                r.loadedDataUtilization());
    std::printf("preprocess    %.3f s\n", preprocess_s);
    std::printf("wall          %.3f s\n", r.wall_seconds);
    if (r.faults_injected || r.transfer_retries || r.checkpoints ||
        r.recoveries) {
        std::printf("faults        %llu injected\n",
                    static_cast<unsigned long long>(r.faults_injected));
        std::printf("xfer retries  %llu\n",
                    static_cast<unsigned long long>(r.transfer_retries));
        std::printf("checkpoints   %llu\n",
                    static_cast<unsigned long long>(r.checkpoints));
        std::printf("recoveries    %llu\n",
                    static_cast<unsigned long long>(r.recoveries));
    }
}

/** Fail fast on an unwritable trace path: probe it before the run so a
 *  typo'd directory costs seconds, not a full simulation. */
void
probeWritable(const std::string &path)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        fatal("digraph_cli: cannot write trace output '", path, "'");
}

/** Write the requested trace exports; no-op when neither was asked. */
void
writeTraces(const metrics::TraceSink &sink, const Options &opts)
{
    if (!opts.trace_json.empty())
        sink.writeChromeJson(opts.trace_json);
    if (!opts.trace_csv.empty())
        sink.writeCsv(opts.trace_csv);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parse(argc, argv);
    const bool want_trace =
        !opts.trace_json.empty() || !opts.trace_csv.empty();
    probeWritable(opts.trace_json);
    probeWritable(opts.trace_csv);

    gpusim::FaultPlan fault_plan;
    if (!opts.faults.empty()) {
        const bool digraph_system = opts.system == "digraph" ||
                                    opts.system == "digraph-t" ||
                                    opts.system == "digraph-w";
        if (!digraph_system) {
            fatal("digraph_cli: --faults requires a digraph system "
                  "(fault tolerance is not implemented for '",
                  opts.system, "')");
        }
        std::string err;
        fault_plan = gpusim::FaultPlan::parse(opts.faults, err);
        if (!err.empty())
            fatal("digraph_cli: --faults: ", err);
    }

    const graph::DirectedGraph g = loadInput(opts);
    if (opts.verbose) {
        std::printf("graph: %s\n",
                    graph::describe(graph::measureProperties(g, 8))
                        .c_str());
    }
    const auto algo = makeAlgo(opts, g);

    gpusim::PlatformConfig platform;
    platform.num_devices = opts.gpus;

    metrics::TraceSink sink;

    if (opts.system == "sequential") {
        // The report is exported through CounterRegistry like every
        // other engine family (no simulated timeline).
        const auto result = baselines::runSequential(
            g, *algo, want_trace ? &sink : nullptr);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(result.report, 0.0);
        return 0;
    }
    if (opts.system == "gunrock") {
        baselines::BaselineOptions bopts;
        bopts.platform = platform;
        bopts.trace = want_trace ? &sink : nullptr;
        if (const std::string err = bopts.validate(); !err.empty())
            fatal("digraph_cli: ", err);
        const auto report = baselines::runBsp(g, *algo, bopts);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(report, 0.0);
        return 0;
    }
    if (opts.system == "groute") {
        baselines::BaselineOptions bopts;
        bopts.platform = platform;
        bopts.trace = want_trace ? &sink : nullptr;
        if (const std::string err = bopts.validate(); !err.empty())
            fatal("digraph_cli: ", err);
        const auto result = baselines::runAsync(g, *algo, bopts);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(result.report, 0.0);
        return 0;
    }

    engine::EngineOptions eopts;
    eopts.platform = platform;
    eopts.trace = want_trace ? &sink : nullptr;
    eopts.faults = fault_plan;
    eopts.verify_invariants = opts.verify;
    if (opts.system == "digraph-t")
        eopts.mode = engine::ExecutionMode::VertexAsync;
    else if (opts.system == "digraph-w")
        eopts.mode = engine::ExecutionMode::PathNoSched;
    else if (opts.system != "digraph")
        usage(argv[0]);
    if (const std::string err = eopts.validate(); !err.empty())
        fatal("digraph_cli: ", err);
    if (opts.verbose && !fault_plan.empty())
        std::printf("faults: %s\n", fault_plan.describe().c_str());
    if (!opts.jobs.empty()) {
        if (opts.system != "digraph")
            fatal("digraph_cli: --jobs requires --system digraph");
        if (opts.evolve_batches > 0)
            fatal("digraph_cli: --jobs and --evolve-batches are "
                  "mutually exclusive");
        engine::JobManager manager(g, eopts);
        manager.addJobs(opts.jobs);
        const auto results = manager.runAll(want_trace);
        std::printf("jobs          %zu over one shared substrate\n",
                    results.size());
        std::printf("shared bytes  %.3f MB\n",
                    static_cast<double>(manager.sharedBytes()) / 1e6);
        for (const auto &job : results) {
            std::printf("--- job %s (%.3f MB private state)\n",
                        job.spec.c_str(),
                        static_cast<double>(job.job_state_bytes) / 1e6);
            printReport(job.report,
                        manager.substrate()->pre.timings.total());
        }
        if (want_trace && !results.empty() && results.front().trace) {
            // Export the first job's trace (one file pair per CLI run).
            writeTraces(*results.front().trace, opts);
        }
        return 0;
    }
    if (opts.evolve_batches > 0) {
        if (opts.algo == "adsorption") {
            fatal("digraph_cli: --evolve-batches does not support "
                  "adsorption (its per-edge weights are bound to the "
                  "construction-time graph)");
        }
        engine::EvolvingOptions evolve;
        evolve.incremental = !opts.evolve_full_rebuild;
        engine::EvolvingEngine evolving(g, eopts, evolve);
        evolving.run(*algo);
        SplitMix64 rng(opts.evolve_seed);
        double total_ingest = 0.0;
        metrics::RunReport last;
        for (std::size_t b = 0; b < opts.evolve_batches; ++b) {
            std::vector<graph::Edge> batch;
            batch.reserve(opts.evolve_batch_size);
            const VertexId n = evolving.graph().numVertices();
            while (batch.size() < opts.evolve_batch_size) {
                const auto s =
                    static_cast<VertexId>(rng.nextBounded(n));
                const auto d =
                    static_cast<VertexId>(rng.nextBounded(n));
                if (s != d)
                    batch.push_back(
                        {s, d, 1.0 + rng.nextDouble() * 9.0});
            }
            const auto step = evolving.insertAndRun(*algo, batch);
            total_ingest += step.ingestSeconds();
            std::printf(
                "batch %zu: +%zu edges, %s, %s, graph %.4fs, "
                "preprocess %.4fs, engine %.4fs (paths %u reused / "
                "%u new)\n",
                b, step.inserted_edges,
                step.incremental ? "incremental" : "full rebuild",
                step.warm ? "warm" : "cold", step.graph_seconds,
                step.preprocess_seconds, step.engine_seconds,
                step.reused_paths, step.new_paths);
            last = step.run;
        }
        std::printf("total ingestion  %.3f s over %zu batches\n",
                    total_ingest, opts.evolve_batches);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(last, total_ingest);
        return 0;
    }
    engine::DiGraphEngine eng(g, eopts);
    if (opts.verbose) {
        std::printf("paths: %u (avg length %.2f), partitions: %u, "
                    "DAG layers: %u\n",
                    eng.preprocessed().paths.numPaths(),
                    eng.preprocessed().paths.avgLength(),
                    eng.preprocessed().numPartitions(),
                    eng.preprocessed().dag.numLayers());
    }
    const auto report = eng.run(*algo);
    if (want_trace)
        writeTraces(sink, opts);
    printReport(report, eng.preprocessSeconds());
    return 0;
}
