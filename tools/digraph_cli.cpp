/**
 * @file
 * Command-line driver: run any system x algorithm on a dataset stand-in
 * or a graph file, print the metrics report.
 *
 * Usage:
 *   digraph_cli --algo pagerank [--system digraph] [--gpus 4]
 *               (--dataset cnr [--scale 0.4] | --graph FILE)
 *               [--source V] [--k K] [--verbose]
 *               [--trace out.json] [--trace-csv out.csv]
 *               [--faults SPEC] [--verify]
 *               [--jobs "sssp:0,pagerank,wcc"]
 *               [--serve script.jobs [--serve-threads N]
 *                [--serve-quantum W] [--serve-budget-mb MB]
 *                [--serve-queue N] [--serve-quota N] [--serve-fifo]]
 *               [--store DIR [--store-version N]]
 *               [--evolve-batches N] [--evolve-batch-size M]
 *               [--evolve-full-rebuild] [--evolve-seed S]
 *   digraph_cli --list-algorithms
 *
 * --jobs runs N concurrent jobs (comma-separated "name[:param]" specs)
 * over ONE shared substrate (digraph system only) and prints a per-job
 * report; --list-algorithms prints the factory registry.
 *
 * --serve runs a GraphService session (digraph system only) fed from a
 * batch script: one job per line, "SPEC [tenant=NAME] [priority=P]",
 * '#' comments. The session schedules jobs with priorities, per-tenant
 * quotas (--serve-quota), state-byte admission control
 * (--serve-budget-mb, with --serve-queue bounding the admission queue),
 * wave-boundary preemption every --serve-quantum waves, and worklist
 * co-scheduling; --serve-fifo disables preemption and co-scheduling
 * (plain FIFO within priority, for comparison). With --trace/--trace-csv
 * the base path gets the scheduler events (job_admit/grant/park/done)
 * and each job gets a ".<id>-<spec>"-suffixed file pair — the same
 * per-job naming --jobs uses.
 *
 * --store DIR attaches the crash-consistent versioned store (DESIGN.md
 * §16, digraph systems only). A run warm-starts from the newest
 * on-disk topology version whose checksums verify for the loaded graph
 * (skipping the whole decomposition pipeline) and falls back to a cold
 * preprocess + commit when nothing verifies; --store-version pins an
 * exact version instead (fatal when it does not verify). Single runs
 * additionally flush merge-barrier checkpoints through the store and
 * --serve sessions journal admitted/completed jobs to DIR/jobs.wal,
 * re-admitting the pending set on restart.
 *
 * --faults takes a deterministic injection plan (digraph systems only),
 * e.g. "seed=7,device=1@50000,xfer=0.01,smx=0.3@20000x16"; --verify runs
 * the post-run invariant checker and aborts on violation.
 *
 * --evolve-batches drives the evolving engine (digraph systems only):
 * after a cold run, N batches of random edge insertions are applied,
 * each followed by a warm re-run; per-batch ingestion timings (graph
 * extension, preprocessing, engine build) are printed. Incremental
 * ingestion is the default; --evolve-full-rebuild switches to the full
 * per-batch rebuild baseline.
 *
 * Systems: digraph (default), digraph-t, digraph-w, gunrock, groute,
 *          sequential.
 * Formats for --graph: .mtx, .graph (METIS), .gr (DIMACS), .bin
 * (native), else plain edge list.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "algorithms/factory.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/sssp.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "engine/digraph_engine.hpp"
#include "engine/evolving.hpp"
#include "engine/graph_service.hpp"
#include "engine/job_manager.hpp"
#include "graph/formats.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "metrics/trace.hpp"
#include "partition/preprocess.hpp"
#include "storage/durable_store.hpp"

namespace {

using namespace digraph;

struct Options
{
    std::string system = "digraph";
    std::string algo = "pagerank";
    std::string dataset;
    std::string graph_file;
    double scale = 0.4;
    unsigned gpus = 4;
    VertexId source = 0;
    unsigned k = 3;
    bool verbose = false;
    std::string trace_json;
    std::string trace_csv;
    std::string faults;
    bool verify = false;
    std::string jobs;
    std::string serve_script;
    std::size_t serve_threads = 0;
    std::uint64_t serve_quantum = 4;
    std::size_t serve_budget_mb = 0;
    std::size_t serve_queue = 0;
    std::size_t serve_quota = 0;
    bool serve_fifo = false;
    std::string store_dir;
    std::uint64_t store_version = 0;
    std::size_t evolve_batches = 0;
    std::size_t evolve_batch_size = 512;
    bool evolve_full_rebuild = false;
    std::uint64_t evolve_seed = 4242;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --algo NAME [--system NAME] [--gpus N]\n"
        "          (--dataset NAME [--scale S] | --graph FILE)\n"
        "          [--source V] [--k K] [--verbose]\n"
        "          [--trace out.json] [--trace-csv out.csv]\n"
        "          [--faults SPEC] [--verify]\n"
        "          [--jobs \"sssp:0,pagerank,wcc\"]\n"
        "          [--serve script.jobs [--serve-threads N]\n"
        "           [--serve-quantum W] [--serve-budget-mb MB]\n"
        "           [--serve-queue N] [--serve-quota N] [--serve-fifo]]\n"
        "          [--store DIR [--store-version N]]\n"
        "          [--evolve-batches N] [--evolve-batch-size M]\n"
        "          [--evolve-full-rebuild] [--evolve-seed S]\n"
        "       %s --list-algorithms\n"
        "algorithms: pagerank adsorption sssp kcore katz bfs wcc\n"
        "systems:    digraph digraph-t digraph-w gunrock groute "
        "sequential\n"
        "datasets:   dblp cnr ljournal webbase it04 twitter\n",
        argv0, argv0);
    std::exit(2);
}

/** Print the factory registry: one row per algorithm with its
 *  incremental-ingestion support and convergence epsilon. */
[[noreturn]] void
listAlgorithms()
{
    // Some algorithms precompute per-graph tables at construction; a
    // tiny generated graph serves as the probe instance.
    graph::GeneratorConfig c;
    c.num_vertices = 8;
    c.num_edges = 16;
    c.seed = 1;
    const graph::DirectedGraph g = graph::generate(c);
    std::printf("%-12s %-12s %s\n", "algorithm", "incremental",
                "epsilon");
    for (const auto &name : algorithms::allAlgorithmNames()) {
        const auto algo = algorithms::makeAlgorithm(name, g);
        std::printf("%-12s %-12s %.3g\n", name.c_str(),
                    algo->supportsIncremental() ? "yes" : "no",
                    algo->epsilon());
    }
    std::exit(0);
}

Options
parse(int argc, char **argv)
{
    Options opts;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--system")
            opts.system = need(i);
        else if (arg == "--algo")
            opts.algo = need(i);
        else if (arg == "--dataset")
            opts.dataset = need(i);
        else if (arg == "--graph")
            opts.graph_file = need(i);
        else if (arg == "--scale")
            opts.scale = std::atof(need(i));
        else if (arg == "--gpus")
            opts.gpus = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--source")
            opts.source = static_cast<VertexId>(std::atol(need(i)));
        else if (arg == "--k")
            opts.k = static_cast<unsigned>(std::atoi(need(i)));
        else if (arg == "--verbose")
            opts.verbose = true;
        else if (arg == "--trace")
            opts.trace_json = need(i);
        else if (arg == "--trace-csv")
            opts.trace_csv = need(i);
        else if (arg == "--faults")
            opts.faults = need(i);
        else if (arg == "--verify")
            opts.verify = true;
        else if (arg == "--jobs")
            opts.jobs = need(i);
        else if (arg == "--serve")
            opts.serve_script = need(i);
        else if (arg == "--serve-threads")
            opts.serve_threads =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--serve-quantum")
            opts.serve_quantum =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (arg == "--serve-budget-mb")
            opts.serve_budget_mb =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--serve-queue")
            opts.serve_queue =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--serve-quota")
            opts.serve_quota =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--serve-fifo")
            opts.serve_fifo = true;
        else if (arg == "--store")
            opts.store_dir = need(i);
        else if (arg == "--store-version")
            opts.store_version =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        else if (arg == "--list-algorithms")
            listAlgorithms();
        else if (arg == "--evolve-batches")
            opts.evolve_batches =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--evolve-batch-size")
            opts.evolve_batch_size =
                static_cast<std::size_t>(std::atol(need(i)));
        else if (arg == "--evolve-full-rebuild")
            opts.evolve_full_rebuild = true;
        else if (arg == "--evolve-seed")
            opts.evolve_seed =
                static_cast<std::uint64_t>(std::atoll(need(i)));
        else
            usage(argv[0]);
    }
    if (opts.dataset.empty() == opts.graph_file.empty())
        usage(argv[0]); // exactly one input source
    return opts;
}

graph::DirectedGraph
loadInput(const Options &opts)
{
    if (!opts.graph_file.empty())
        return graph::loadAnyFormat(opts.graph_file);
    for (const auto d : graph::allDatasets()) {
        if (graph::datasetName(d) == opts.dataset)
            return graph::makeDataset(d, opts.scale);
    }
    fatal("unknown dataset '", opts.dataset, "'");
}

algorithms::AlgorithmPtr
makeAlgo(const Options &opts, const graph::DirectedGraph &g)
{
    if (opts.algo == "sssp")
        return std::make_shared<algorithms::Sssp>(opts.source);
    if (opts.algo == "kcore")
        return std::make_shared<algorithms::KCore>(opts.k);
    return algorithms::makeAlgorithm(opts.algo, g);
}

void
printReport(const metrics::RunReport &r, double preprocess_s)
{
    std::printf("system        %s\n", r.system.c_str());
    std::printf("algorithm     %s\n", r.algorithm.c_str());
    std::printf("gpus          %u\n", r.num_gpus);
    std::printf("partitions    %llu\n",
                static_cast<unsigned long long>(r.num_partitions));
    std::printf("updates       %llu\n",
                static_cast<unsigned long long>(r.vertex_updates));
    std::printf("edge procs    %llu\n",
                static_cast<unsigned long long>(r.edge_processings));
    std::printf("rounds        %llu\n",
                static_cast<unsigned long long>(r.rounds));
    std::printf("sim cycles    %.4g\n", r.sim_cycles);
    std::printf("utilization   %.1f%%\n", r.utilization * 100.0);
    std::printf("traffic       %.3f MB\n",
                static_cast<double>(r.trafficVolume()) / 1e6);
    std::printf("loaded-data   %.4f updates/slot\n",
                r.loadedDataUtilization());
    std::printf("preprocess    %.3f s\n", preprocess_s);
    std::printf("wall          %.3f s\n", r.wall_seconds);
    if (r.faults_injected || r.transfer_retries || r.checkpoints ||
        r.recoveries) {
        std::printf("faults        %llu injected\n",
                    static_cast<unsigned long long>(r.faults_injected));
        std::printf("xfer retries  %llu\n",
                    static_cast<unsigned long long>(r.transfer_retries));
        std::printf("checkpoints   %llu\n",
                    static_cast<unsigned long long>(r.checkpoints));
        std::printf("recoveries    %llu\n",
                    static_cast<unsigned long long>(r.recoveries));
    }
}

/** Fail fast on an unwritable trace path: probe it before the run so a
 *  typo'd directory costs seconds, not a full simulation. */
void
probeWritable(const std::string &path)
{
    if (path.empty())
        return;
    std::ofstream probe(path, std::ios::app);
    if (!probe)
        fatal("digraph_cli: cannot write trace output '", path, "'");
}

/** Write the requested trace exports; no-op when neither was asked. */
void
writeTraces(const metrics::TraceSink &sink, const Options &opts)
{
    if (!opts.trace_json.empty())
        sink.writeChromeJson(opts.trace_json);
    if (!opts.trace_csv.empty())
        sink.writeCsv(opts.trace_csv);
}

/** Per-job trace path: ".<id>-<sanitized spec>" inserted before the
 *  extension (or appended), so "t.json" -> "t.0-sssp_5.json". */
std::string
jobTracePath(const std::string &base, std::uint64_t id,
             const std::string &spec)
{
    std::string tag = spec;
    for (char &c : tag) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    const std::string suffix = "." + std::to_string(id) + "-" + tag;
    const std::size_t dot = base.rfind('.');
    const std::size_t slash = base.rfind('/');
    std::string out = base;
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash))
        out.insert(dot, suffix);
    else
        out += suffix;
    return out;
}

/** Export every job's private trace to its own file pair. */
void
writeJobTraces(const std::vector<engine::JobResult> &results,
               const Options &opts)
{
    for (const auto &job : results) {
        if (!job.trace)
            continue;
        if (!opts.trace_json.empty()) {
            job.trace->writeChromeJson(
                jobTracePath(opts.trace_json, job.id, job.spec));
        }
        if (!opts.trace_csv.empty()) {
            job.trace->writeCsv(
                jobTracePath(opts.trace_csv, job.id, job.spec));
        }
    }
}

/** "file:line: message" prefix for --serve script diagnostics. */
[[noreturn]] void
scriptError(const std::string &path, std::size_t line_no,
            const std::string &line, const std::string &message)
{
    fatal("digraph_cli: ", path, ":", line_no, ": ", message,
          " in line '", line, "'");
}

/** Parse a --serve batch script: one job per line,
 *  "SPEC [tenant=NAME] [priority=P]", '#' starts a comment. Every
 *  diagnostic carries the script name and line number; unknown
 *  key=value annotations and unknown algorithm names are rejected
 *  here, before any substrate is built. */
std::vector<engine::JobRequest>
parseServeScript(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("digraph_cli: cannot read --serve script '", path, "'");
    const auto known_algos = algorithms::allAlgorithmNames();
    std::vector<engine::JobRequest> requests;
    std::string raw;
    std::size_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = raw;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream tokens(line);
        engine::JobRequest request;
        bool have_spec = false;
        std::string tok;
        while (tokens >> tok) {
            const std::size_t eq = tok.find('=');
            if (tok.rfind("tenant=", 0) == 0) {
                request.tenant = tok.substr(7);
                if (request.tenant.empty())
                    scriptError(path, line_no, raw,
                                "empty tenant= annotation");
            } else if (tok.rfind("priority=", 0) == 0) {
                const std::string value = tok.substr(9);
                char *end = nullptr;
                request.priority = static_cast<int>(
                    std::strtol(value.c_str(), &end, 10));
                if (value.empty() || end == nullptr || *end != '\0')
                    scriptError(path, line_no, raw,
                                "malformed priority= annotation '" +
                                    value + "'");
            } else if (eq != std::string::npos && have_spec) {
                // A key=value after the spec can only be an annotation,
                // and only tenant=/priority= exist.
                scriptError(path, line_no, raw,
                            "unknown annotation '" + tok.substr(0, eq) +
                                "=' (expected tenant= or priority=)");
            } else if (!have_spec) {
                request.spec = tok;
                have_spec = true;
            } else {
                scriptError(path, line_no, raw,
                            "unexpected token '" + tok +
                                "' after the job spec");
            }
        }
        if (!have_spec)
            continue;
        // Validate the algorithm name now: a typo should name the
        // script line, not abort mid-session at submission time.
        const std::string name =
            request.spec.substr(0, request.spec.find(':'));
        if (std::find(known_algos.begin(), known_algos.end(), name) ==
            known_algos.end()) {
            scriptError(path, line_no, raw,
                        "unknown algorithm '" + name + "'");
        }
        requests.push_back(request);
    }
    if (requests.empty()) {
        fatal("digraph_cli: --serve script '", path,
              "' contains no jobs");
    }
    return requests;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parse(argc, argv);
    const bool want_trace =
        !opts.trace_json.empty() || !opts.trace_csv.empty();
    probeWritable(opts.trace_json);
    probeWritable(opts.trace_csv);

    const bool digraph_system = opts.system == "digraph" ||
                                opts.system == "digraph-t" ||
                                opts.system == "digraph-w";
    if (!opts.store_dir.empty()) {
        if (!digraph_system) {
            fatal("digraph_cli: --store requires a digraph system "
                  "(the durable store holds path/partition shards '",
                  opts.system, "' has no use for)");
        }
        if (opts.evolve_batches > 0) {
            fatal("digraph_cli: --store and --evolve-batches are "
                  "mutually exclusive");
        }
    }
    if (opts.store_version != 0 && opts.store_dir.empty())
        fatal("digraph_cli: --store-version requires --store");

    gpusim::FaultPlan fault_plan;
    if (!opts.faults.empty()) {
        if (!digraph_system) {
            fatal("digraph_cli: --faults requires a digraph system "
                  "(fault tolerance is not implemented for '",
                  opts.system, "')");
        }
        std::string err;
        fault_plan = gpusim::FaultPlan::parse(opts.faults, err);
        if (!err.empty())
            fatal("digraph_cli: --faults: ", err);
    }

    const graph::DirectedGraph g = loadInput(opts);
    if (opts.verbose) {
        std::printf("graph: %s\n",
                    graph::describe(graph::measureProperties(g, 8))
                        .c_str());
    }
    const auto algo = makeAlgo(opts, g);

    gpusim::PlatformConfig platform;
    platform.num_devices = opts.gpus;

    metrics::TraceSink sink;

    if (opts.system == "sequential") {
        // The report is exported through CounterRegistry like every
        // other engine family (no simulated timeline).
        const auto result = baselines::runSequential(
            g, *algo, want_trace ? &sink : nullptr);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(result.report, 0.0);
        return 0;
    }
    if (opts.system == "gunrock") {
        baselines::BaselineOptions bopts;
        bopts.platform = platform;
        bopts.trace = want_trace ? &sink : nullptr;
        if (const std::string err = bopts.validate(); !err.empty())
            fatal("digraph_cli: ", err);
        const auto report = baselines::runBsp(g, *algo, bopts);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(report, 0.0);
        return 0;
    }
    if (opts.system == "groute") {
        baselines::BaselineOptions bopts;
        bopts.platform = platform;
        bopts.trace = want_trace ? &sink : nullptr;
        if (const std::string err = bopts.validate(); !err.empty())
            fatal("digraph_cli: ", err);
        const auto result = baselines::runAsync(g, *algo, bopts);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(result.report, 0.0);
        return 0;
    }

    engine::EngineOptions eopts;
    eopts.platform = platform;
    eopts.trace = want_trace ? &sink : nullptr;
    eopts.faults = fault_plan;
    eopts.verify_invariants = opts.verify;
    if (opts.system == "digraph-t")
        eopts.mode = engine::ExecutionMode::VertexAsync;
    else if (opts.system == "digraph-w")
        eopts.mode = engine::ExecutionMode::PathNoSched;
    else if (opts.system != "digraph")
        usage(argv[0]);
    if (const std::string err = eopts.validate(); !err.empty())
        fatal("digraph_cli: ", err);
    if (opts.verbose && !fault_plan.empty())
        std::printf("faults: %s\n", fault_plan.describe().c_str());

    // Durable store (DESIGN.md §16): warm-start the substrate from the
    // newest verifying on-disk version, or cold-preprocess and commit
    // so the NEXT run is warm.
    std::unique_ptr<storage::DurableStore> store;
    std::shared_ptr<const engine::EngineSubstrate> sub;
    std::uint64_t store_version = 0;
    if (!opts.store_dir.empty()) {
        store = std::make_unique<storage::DurableStore>(opts.store_dir);
        if (want_trace)
            store->setTrace(&sink);
        store_version = opts.store_version
                            ? opts.store_version
                            : store->recoverVersion(&g);
        if (store_version != 0) {
            if (auto pre = store->loadTopology(store_version, g)) {
                sub = engine::EngineSubstrate::build(g,
                                                     std::move(*pre));
                std::printf("store         warm start from '%s' "
                            "version %llu (decomposition skipped)\n",
                            opts.store_dir.c_str(),
                            static_cast<unsigned long long>(
                                store_version));
            } else if (opts.store_version != 0) {
                fatal("digraph_cli: --store-version ",
                      opts.store_version,
                      " does not verify against the loaded graph");
            } else {
                store_version = 0;
            }
        }
        if (!sub) {
            eopts.resolvePartitionBudget(g.numEdges());
            sub = engine::EngineSubstrate::build(
                g, partition::preprocess(g, eopts.preprocess));
            store_version = sub->saveTo(*store, g);
            if (store_version == 0) {
                fatal("digraph_cli: --store: topology commit to '",
                      opts.store_dir, "' failed");
            }
            std::printf("store         cold start, committed "
                        "version %llu to '%s'\n",
                        static_cast<unsigned long long>(store_version),
                        opts.store_dir.c_str());
        }
    }

    if (!opts.serve_script.empty()) {
        if (opts.system != "digraph")
            fatal("digraph_cli: --serve requires --system digraph");
        if (!opts.jobs.empty() || opts.evolve_batches > 0)
            fatal("digraph_cli: --serve is mutually exclusive with "
                  "--jobs and --evolve-batches");
        const auto requests = parseServeScript(opts.serve_script);
        engine::ServiceConfig sconfig;
        sconfig.session_threads = opts.serve_threads;
        sconfig.quantum_waves =
            opts.serve_fifo ? 0 : opts.serve_quantum;
        sconfig.co_schedule = !opts.serve_fifo;
        sconfig.state_budget_bytes = opts.serve_budget_mb * 1000000ull;
        sconfig.max_queued_jobs = opts.serve_queue;
        sconfig.tenant_quota = opts.serve_quota;
        sconfig.with_traces = want_trace;
        sconfig.trace = want_trace ? &sink : nullptr;

        // With a store, admitted jobs a crashed session never finished
        // are replayed from the WAL in front of the script's jobs. The
        // WAL is compacted (atomic rewrite to exactly the pending set)
        // rather than deleted, and each resumed job adopts its surviving
        // record via journal_id — so a crash at any point of the restart
        // replays the same pending set instead of losing it.
        std::unique_ptr<storage::JobJournal> journal;
        std::vector<storage::JobJournal::PendingJob> resumed;
        if (store) {
            journal = std::make_unique<storage::JobJournal>(
                store->journalPath());
            resumed = journal->replay();
            if (!journal->compact(resumed)) {
                std::printf("store         WARNING: journal compaction "
                            "failed; keeping the old WAL\n");
            }
            sconfig.journal = journal.get();
        }
        auto service_ptr =
            sub ? std::make_unique<engine::GraphService>(g, sub, eopts,
                                                         sconfig)
                : std::make_unique<engine::GraphService>(g, eopts,
                                                         sconfig);
        engine::GraphService &service = *service_ptr;
        std::printf("service       %zu jobs, %zu threads, quantum %llu "
                    "waves%s\n",
                    requests.size(), service.sessionThreads(),
                    static_cast<unsigned long long>(
                        sconfig.quantum_waves),
                    opts.serve_fifo ? " (fifo)" : "");
        std::printf("shared bytes  %.3f MB\n",
                    static_cast<double>(service.sharedBytes()) / 1e6);
        if (!resumed.empty()) {
            std::printf("store         resumed %zu journaled job(s)\n",
                        resumed.size());
            for (const auto &p : resumed) {
                engine::JobRequest request;
                request.spec = p.spec;
                request.priority = p.priority;
                if (!p.tenant.empty())
                    request.tenant = p.tenant;
                request.journal_id = p.id; // adopt the compacted record
                service.addJobAsync(request);
            }
        }
        for (const auto &request : requests)
            service.addJobAsync(request);
        for (engine::JobId id = 0; id < service.numJobs(); ++id) {
            const auto status = service.poll(id);
            if (status.state == engine::JobState::Rejected) {
                std::printf("--- job %s REJECTED: %s\n",
                            status.spec.c_str(),
                            status.detail.c_str());
            }
        }
        const auto results = service.drain();
        for (const auto &job : results) {
            std::printf("--- job %s tenant=%s priority=%d parked=%llu "
                        "(%.3f MB private state)\n",
                        job.spec.c_str(), job.tenant.c_str(),
                        job.priority,
                        static_cast<unsigned long long>(
                            job.times_parked),
                        static_cast<double>(job.job_state_bytes) / 1e6);
            printReport(job.report,
                        service.substrate()->pre.timings.total());
        }
        const auto stats = service.stats();
        std::printf(
            "scheduler     admitted=%llu rejected=%llu grants=%llu "
            "co=%llu parks=%llu peak_jobs=%zu peak_state=%.3f MB\n",
            static_cast<unsigned long long>(stats.admitted),
            static_cast<unsigned long long>(stats.rejected),
            static_cast<unsigned long long>(stats.grants),
            static_cast<unsigned long long>(stats.co_scheduled_grants),
            static_cast<unsigned long long>(stats.parks),
            stats.peak_running,
            static_cast<double>(stats.peak_inflight_bytes) / 1e6);
        if (want_trace) {
            // Base path: the scheduler events; each job: its own pair.
            writeTraces(sink, opts);
            writeJobTraces(results, opts);
        }
        return 0;
    }
    if (!opts.jobs.empty()) {
        if (opts.system != "digraph")
            fatal("digraph_cli: --jobs requires --system digraph");
        if (opts.evolve_batches > 0)
            fatal("digraph_cli: --jobs and --evolve-batches are "
                  "mutually exclusive");
        auto manager_ptr =
            sub ? std::make_unique<engine::JobManager>(g, sub, eopts)
                : std::make_unique<engine::JobManager>(g, eopts);
        engine::JobManager &manager = *manager_ptr;
        manager.addJobs(opts.jobs);
        const auto results = manager.runAll(want_trace);
        std::printf("jobs          %zu over one shared substrate\n",
                    results.size());
        std::printf("shared bytes  %.3f MB\n",
                    static_cast<double>(manager.sharedBytes()) / 1e6);
        for (const auto &job : results) {
            std::printf("--- job %s (%.3f MB private state)\n",
                        job.spec.c_str(),
                        static_cast<double>(job.job_state_bytes) / 1e6);
            printReport(job.report,
                        manager.substrate()->pre.timings.total());
        }
        // One spec-suffixed file pair per job (exporting only the first
        // job's trace silently dropped the rest).
        if (want_trace)
            writeJobTraces(results, opts);
        return 0;
    }
    if (opts.evolve_batches > 0) {
        if (opts.algo == "adsorption") {
            fatal("digraph_cli: --evolve-batches does not support "
                  "adsorption (its per-edge weights are bound to the "
                  "construction-time graph)");
        }
        engine::EvolvingOptions evolve;
        evolve.incremental = !opts.evolve_full_rebuild;
        engine::EvolvingEngine evolving(g, eopts, evolve);
        evolving.run(*algo);
        SplitMix64 rng(opts.evolve_seed);
        double total_ingest = 0.0;
        metrics::RunReport last;
        for (std::size_t b = 0; b < opts.evolve_batches; ++b) {
            std::vector<graph::Edge> batch;
            batch.reserve(opts.evolve_batch_size);
            const VertexId n = evolving.graph().numVertices();
            while (batch.size() < opts.evolve_batch_size) {
                const auto s =
                    static_cast<VertexId>(rng.nextBounded(n));
                const auto d =
                    static_cast<VertexId>(rng.nextBounded(n));
                if (s != d)
                    batch.push_back(
                        {s, d, 1.0 + rng.nextDouble() * 9.0});
            }
            const auto step = evolving.insertAndRun(*algo, batch);
            total_ingest += step.ingestSeconds();
            std::printf(
                "batch %zu: +%zu edges, %s, %s, graph %.4fs, "
                "preprocess %.4fs, engine %.4fs (paths %u reused / "
                "%u new)\n",
                b, step.inserted_edges,
                step.incremental ? "incremental" : "full rebuild",
                step.warm ? "warm" : "cold", step.graph_seconds,
                step.preprocess_seconds, step.engine_seconds,
                step.reused_paths, step.new_paths);
            last = step.run;
        }
        std::printf("total ingestion  %.3f s over %zu batches\n",
                    total_ingest, opts.evolve_batches);
        if (want_trace)
            writeTraces(sink, opts);
        printReport(last, total_ingest);
        return 0;
    }
    if (store) {
        // Single runs flush merge-barrier checkpoints through the
        // store, chained on the committed topology version.
        eopts.store = store.get();
        eopts.store_parent = store_version;
    }
    auto eng_ptr =
        sub ? std::make_unique<engine::DiGraphEngine>(g, sub, eopts)
            : std::make_unique<engine::DiGraphEngine>(g, eopts);
    engine::DiGraphEngine &eng = *eng_ptr;
    if (opts.verbose) {
        std::printf("paths: %u (avg length %.2f), partitions: %u, "
                    "DAG layers: %u\n",
                    eng.preprocessed().paths.numPaths(),
                    eng.preprocessed().paths.avgLength(),
                    eng.preprocessed().numPartitions(),
                    eng.preprocessed().dag.numLayers());
    }
    const auto report = eng.run(*algo);
    if (want_trace)
        writeTraces(sink, opts);
    printReport(report, eng.preprocessSeconds());
    return 0;
}
