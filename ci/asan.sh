#!/bin/sh
# Memory-check the engine under AddressSanitizer + UBSan.
#
# Builds the repo in a dedicated tree (build-asan/) with
# -DDIGRAPH_SANITIZE=address,undefined and runs the engine and
# fault-tolerance test binaries. The fault suite is the interesting one
# here: checkpoint restore rewrites the V_val/E_val arrays in place and
# recovery drops device residency wholesale, so any stale index or
# use-after-rollback shows up under ASan. test_job_manager,
# test_graph_service, and the concurrent-jobs smoke add the
# multi-ValuePlane lifecycle (per-job state allocated/freed around one
# shared substrate, including engines destroyed after preempted runs).
#
# Usage (from the repo root):
#     ci/asan.sh               # configure + build + run
#     ci/asan.sh -R Fault      # extra args are passed through to ctest
#     ci/asan.sh --if-enabled  # ctest entry point: exit 77 (skip)
#                              # unless DIGRAPH_CI_SANITIZE=1
set -eu

if [ "${1:-}" = "--if-enabled" ]; then
    shift
    if [ "${DIGRAPH_CI_SANITIZE:-0}" != "1" ]; then
        echo "asan: DIGRAPH_CI_SANITIZE!=1, skipping" >&2
        exit 77
    fi
fi

cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DDIGRAPH_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j \
    --target test_fault_tolerance test_robustness \
    test_engine_parallel test_engine_features test_io test_snapshot \
    test_graph_service test_job_manager test_wave_kernels \
    concurrent_jobs

if [ "$#" -gt 0 ]; then
    ctest --test-dir build-asan --output-on-failure "$@"
else
    ctest --test-dir build-asan --output-on-failure \
        -R 'test_(fault_tolerance|robustness|engine_parallel|engine_features|io|snapshot|graph_service|job_manager|wave_kernels)$|bench_jobs_smoke'
fi
