#!/bin/sh
# Memory-check the engine under AddressSanitizer + UBSan.
#
# Builds the repo in a dedicated tree (build-asan/) with
# -DDIGRAPH_SANITIZE=address,undefined and runs the engine and
# fault-tolerance test binaries. The fault suite is the interesting one
# here: checkpoint restore rewrites the V_val/E_val arrays in place and
# recovery drops device residency wholesale, so any stale index or
# use-after-rollback shows up under ASan.
#
# Usage (from the repo root):
#     ci/asan.sh            # configure + build + run
#     ci/asan.sh -R Fault   # extra args are passed through to ctest
set -eu

cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DDIGRAPH_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j \
    --target test_fault_tolerance test_robustness \
    test_engine_parallel test_engine_features test_io test_snapshot

if [ "$#" -gt 0 ]; then
    ctest --test-dir build-asan --output-on-failure "$@"
else
    ctest --test-dir build-asan --output-on-failure \
        -R 'test_(fault_tolerance|robustness|engine_parallel|engine_features|io|snapshot)$'
fi
