#!/bin/sh
# Validate the chrome://tracing JSON the CLI emits with --trace.
#
# Runs a traced digraph_cli invocation, then uses jq to check the trace
# against the schema DESIGN.md documents:
#   - top-level displayTimeUnit / counters / traceEvents keys
#   - every counter key present with a numeric value
#   - every event is a complete ("ph": "X") event with name/ts/dur/pid/tid
#     and a numeric wave arg
#   - event names come from the documented taxonomy
# and cross-checks the embedded counter totals against the report the CLI
# printed on stdout (updates == vertex_updates, edge procs ==
# edge_processings, partitions == num_partitions) — the "trace and report
# can never disagree" invariant.
#
# Usage: ci/trace_schema.sh /path/to/digraph_cli [workdir]
# Exit codes: 0 ok, 1 validation failure, 77 jq unavailable (skip).
set -eu

CLI="${1:?usage: trace_schema.sh /path/to/digraph_cli [workdir]}"
WORKDIR="${2:-$(mktemp -d)}"
mkdir -p "$WORKDIR"

if ! command -v jq >/dev/null 2>&1; then
    echo "trace_schema: jq not found, skipping" >&2
    exit 77
fi

TRACE="$WORKDIR/trace.json"
REPORT="$WORKDIR/report.txt"

"$CLI" --algo sssp --dataset dblp --scale 0.2 --gpus 2 \
    --trace "$TRACE" --trace-csv "$WORKDIR/trace.csv" > "$REPORT"

fail() {
    echo "trace_schema: $1" >&2
    exit 1
}

# --- structural schema ---------------------------------------------------
jq -e 'type == "object"' "$TRACE" >/dev/null ||
    fail "trace is not a JSON object"
jq -e '.displayTimeUnit == "ms"' "$TRACE" >/dev/null ||
    fail "missing displayTimeUnit"
jq -e '.counters | type == "object"' "$TRACE" >/dev/null ||
    fail "missing counters object"
jq -e '.traceEvents | type == "array" and length > 0' "$TRACE" >/dev/null ||
    fail "traceEvents missing or empty"

for key in edge_processings vertex_updates rounds waves \
    partition_processings num_partitions host_transfer_bytes \
    ring_transfer_bytes global_load_bytes loaded_vertices used_vertices \
    faults_injected transfer_retries checkpoints recoveries \
    store_commits store_commit_fails store_recovers
do
    jq -e --arg k "$key" '.counters[$k] | type == "number"' \
        "$TRACE" >/dev/null || fail "counter $key missing or non-numeric"
done

jq -e '.traceEvents | all(
        .ph == "X"
        and (.name | type == "string")
        and (.ts | type == "number")
        and (.dur | type == "number")
        and (.pid | type == "number")
        and (.tid | type == "number")
        and (.args.wave | type == "number"))' "$TRACE" >/dev/null ||
    fail "an event is missing required complete-event fields"

jq -e '.traceEvents | map(.name) | unique - ["wave_start", "wave_end",
        "dispatch", "merge_barrier", "mirror_push", "path_schedule",
        "steal", "fault_injected", "transfer_retry", "checkpoint",
        "recovery", "job_admit", "job_grant", "job_park",
        "job_done", "store_commit", "store_recover"] | length == 0' \
    "$TRACE" >/dev/null ||
    fail "event name outside the documented taxonomy"

jq -e '([.traceEvents[] | select(.name == "wave_start")] | length) ==
       ([.traceEvents[] | select(.name == "wave_end")] | length)' \
    "$TRACE" >/dev/null || fail "unbalanced wave_start/wave_end"

# --- trace counters == printed report -----------------------------------
report_field() {
    awk -v key="$1" '$1 == key { print $NF }' "$REPORT" | head -n 1
}

check_counter() {
    want="$(report_field "$1")"
    got="$(jq -r --arg k "$2" '.counters[$k]' "$TRACE")"
    [ "$want" = "$got" ] ||
        fail "report $1=$want but trace $2=$got"
}

check_counter updates vertex_updates
check_counter rounds rounds
check_counter partitions num_partitions

# dispatch event count == partition_processings counter
jq -e '([.traceEvents[] | select(.name == "dispatch")] | length) ==
       .counters.partition_processings' "$TRACE" >/dev/null ||
    fail "dispatch event count != partition_processings"

# --- CSV sanity ----------------------------------------------------------
head -n 1 "$WORKDIR/trace.csv" | grep -q \
    '^event,tid,wave,partition,sim_begin,sim_dur,wall_seconds,arg0,arg1$' ||
    fail "unexpected CSV header"

# --- faulted run: fault counters == fault event counts -------------------
# Kill device 1 mid-run and drop 5% of transfers; the engine must recover
# (recoveries >= 1) and every fault counter must equal the count of its
# trace event type — the observability invariant the fault-tolerance
# tests assert in-process, checked here end-to-end through the CLI.
FTRACE="$WORKDIR/fault_trace.json"
"$CLI" --algo sssp --dataset dblp --scale 0.2 --gpus 2 \
    --faults "seed=3,device=1@1000,xfer=0.05" --verify \
    --trace "$FTRACE" > "$WORKDIR/fault_report.txt"

jq -e '.counters.recoveries >= 1' "$FTRACE" >/dev/null ||
    fail "faulted run did not record a recovery"

for pair in "faults_injected fault_injected" \
    "transfer_retries transfer_retry" \
    "checkpoints checkpoint" \
    "recoveries recovery"
do
    counter="${pair%% *}"
    event="${pair##* }"
    jq -e --arg c "$counter" --arg e "$event" \
        '([.traceEvents[] | select(.name == $e)] | length) ==
         .counters[$c]' "$FTRACE" >/dev/null ||
        fail "counter $counter != $event event count"
done

echo "trace_schema: OK ($(jq '.traceEvents | length' "$TRACE") events," \
    "faulted run $(jq '.counters.recoveries' "$FTRACE") recovery)"
