#!/bin/sh
# Crash-consistency sweep for the durable store (DESIGN.md §16).
#
# Two phases, both in a dedicated ASan+UBSan tree (build-crash/):
#
#  1. Fault matrix: test_durable_store drives the FileOps fault plans
#     (failed shard writes at every position, torn manifest renames,
#     short reads, torn journal appends) plus the recovery edge cases;
#     ASan turns any stale mapping or overrun in the mmap-backed
#     loaders into a hard failure.
#
#  2. Kill-and-restart: a digraph_cli --serve session over a --store
#     directory is killed with SIGKILL mid-run, then restarted on the
#     same store. The restart must warm-start from the committed
#     topology, replay the job journal, and finish every job — and each
#     resumed job's stable report fields (updates, edge procs, rounds)
#     must equal a reference session that never crashed.
#
# Usage (from the repo root):
#     ci/crash.sh              # configure + build + run both phases
#     ci/crash.sh --if-enabled # ctest entry point: exit 77 (skip)
#                              # unless DIGRAPH_CI_CRASH=1
set -eu

if [ "${1:-}" = "--if-enabled" ]; then
    shift
    if [ "${DIGRAPH_CI_CRASH:-0}" != "1" ]; then
        echo "crash: DIGRAPH_CI_CRASH!=1, skipping" >&2
        exit 77
    fi
fi

cd "$(dirname "$0")/.."

cmake -B build-crash -S . -DDIGRAPH_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-crash -j --target test_durable_store digraph_cli

fail() {
    echo "crash: $1" >&2
    exit 1
}

# --- phase 1: fault matrix under ASan ------------------------------------
./build-crash/tests/test_durable_store ||
    fail "fault-injection suite failed under ASan"

CLI=./build-crash/tools/digraph_cli
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Per-spec stable report fields from a --serve transcript:
# "spec updates=N edge_procs=M rounds=R", one line per completed job.
job_fields() {
    awk '$1 == "---" && $2 == "job" { spec = $3 }
         $1 == "updates"    { u = $2 }
         $1 == "edge"       { e = $3 }
         $1 == "rounds"     { print spec, "updates=" u, "edge_procs=" e,
                              "rounds=" $2 }' "$1" | sort
}

SCRIPT="$WORK/jobs.txt"
JOBS=6
printf 'pagerank\nadsorption\nkatz\nsssp:0\nwcc\nkcore:3\n' > "$SCRIPT"

# --- reference: the same session, never crashed --------------------------
"$CLI" --algo sssp --dataset dblp --scale 0.4 --serve "$SCRIPT" \
    --store "$WORK/store_ref" > "$WORK/ref.txt" 2>&1 ||
    fail "reference serve session failed"
job_fields "$WORK/ref.txt" > "$WORK/ref.fields"
[ "$(wc -l < "$WORK/ref.fields")" -eq "$JOBS" ] ||
    fail "reference session did not report all $JOBS jobs"

# --- phase 2: SIGKILL mid-session, then restart --------------------------
"$CLI" --algo sssp --dataset dblp --scale 0.4 --serve "$SCRIPT" \
    --store "$WORK/store" > "$WORK/killed.txt" 2>&1 &
PID=$!
# Kill the instant every job's admission hits the journal: the CLI
# journals all script jobs up front, while draining them takes seconds
# under ASan, so admitted-but-not-completed jobs are guaranteed to be
# pending when SIGKILL lands.
WAL="$WORK/store/jobs.wal"
i=0
while :; do
    ADMITTED=$(grep -c '^A ' "$WAL" 2>/dev/null || true)
    [ -n "$ADMITTED" ] || ADMITTED=0
    [ "$ADMITTED" -lt "$JOBS" ] || break
    kill -0 "$PID" 2>/dev/null || fail "killed session exited too early"
    i=$((i + 1))
    [ "$i" -lt 600 ] || fail "session never journaled all $JOBS admissions"
    sleep 0.1
done
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

[ -f "$WORK/store/MANIFEST.v1.json" ] ||
    fail "killed session never committed its topology version"

printf 'bfs:0\n' > "$WORK/restart_jobs.txt"
"$CLI" --algo sssp --dataset dblp --scale 0.4 \
    --serve "$WORK/restart_jobs.txt" \
    --store "$WORK/store" > "$WORK/restart.txt" 2>&1 ||
    fail "restarted session failed"

grep -q "warm start" "$WORK/restart.txt" ||
    fail "restart did not warm-start from the store"
grep -q "resumed" "$WORK/restart.txt" ||
    fail "restart resumed nothing from the journal"

# Every job the restart resumed from the journal must report exactly
# the reference session's stable fields (bfs:0 is the restart's own
# script job — excluded).
job_fields "$WORK/restart.txt" | grep -v '^bfs:0 ' \
    > "$WORK/restart.fields" || true
RESUMED=$(wc -l < "$WORK/restart.fields")
[ "$RESUMED" -ge 1 ] || fail "restart completed no resumed jobs"
while read -r line; do
    grep -Fqx "$line" "$WORK/ref.fields" ||
        fail "resumed job diverged from the reference: $line"
done < "$WORK/restart.fields"

# The journal must be fully drained: a second restart resumes nothing.
"$CLI" --algo sssp --dataset dblp --scale 0.4 \
    --serve "$WORK/restart_jobs.txt" \
    --store "$WORK/store" > "$WORK/restart2.txt" 2>&1 ||
    fail "second restart failed"
grep -q "resumed" "$WORK/restart2.txt" &&
    fail "second restart still found journaled jobs"

echo "crash: OK (fault matrix passed, kill-restart resumed $RESUMED" \
    "job(s) bit-identically)"
