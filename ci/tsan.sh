#!/bin/sh
# Race-check the parallel wave execution engine under ThreadSanitizer.
#
# Builds the repo in a dedicated tree (build-tsan/) with
# -DDIGRAPH_SANITIZE=thread and runs the engine test binaries — the
# parallel suite already exercises engine_threads in {2, 4} and the
# hardware-concurrency path, test_job_manager races N whole jobs
# against each other over one shared substrate, test_graph_service
# races the inter-job scheduler (grants, wave-boundary preemption,
# dynamic thread reallocation) against running engines, and
# test_wave_kernels drives the lock-free delta commit against its
# ordered-replay oracle, so any data race in the wave compute body /
# commitDeltas / the barrier replay / the job pool shows up here.
#
# Usage (from the repo root):
#     ci/tsan.sh               # configure + build + run
#     ci/tsan.sh -R Waves      # extra args are passed through to ctest
#     ci/tsan.sh --if-enabled  # ctest entry point: exit 77 (skip)
#                              # unless DIGRAPH_CI_SANITIZE=1
set -eu

if [ "${1:-}" = "--if-enabled" ]; then
    shift
    if [ "${DIGRAPH_CI_SANITIZE:-0}" != "1" ]; then
        echo "tsan: DIGRAPH_CI_SANITIZE!=1, skipping" >&2
        exit 77
    fi
fi

cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DDIGRAPH_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j \
    --target test_engine_parallel test_engine_features \
    test_engine_convergence test_evolving_incremental \
    test_graph_service test_job_manager test_wave_kernels \
    concurrent_jobs

if [ "$#" -gt 0 ]; then
    ctest --test-dir build-tsan --output-on-failure "$@"
else
    ctest --test-dir build-tsan --output-on-failure \
        -R 'test_engine_(parallel|features|convergence)|test_evolving_incremental|test_graph_service|test_job_manager|test_wave_kernels|bench_jobs_smoke'
fi
