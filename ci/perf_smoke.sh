#!/bin/sh
# Perf smoke: guard the single-thread wave-engine throughput.
#
# Builds host_engine_scaling in a dedicated Release tree (build-perf/),
# runs it at a small workload scale, extracts the 1-thread wall-clock
# of the delta-merge pagerank family from BENCH_engine.json, and
# compares it against a locally recorded baseline: >10% slower fails.
# The baseline is recorded on the first run (or whenever the smoke
# scale changes) and ratcheted down when a run comes in faster, so the
# check is self-calibrating per machine — no committed numbers, no
# cross-host noise.
#
# The bench's own >1.5x speedup gate (exit 2) is ignored here: at smoke
# scale on arbitrary CI hosts it measures the container, not the code.
# Determinism failures (exit 1) still fail the smoke.
#
# Usage (from the repo root):
#     ci/perf_smoke.sh             # build + run + compare
#     ci/perf_smoke.sh --if-enabled  # ctest entry point: exit 77
#                                    # (skip) unless DIGRAPH_CI_PERF=1
#
# Knobs: DIGRAPH_PERF_SMOKE_SCALE (default 0.05),
#        DIGRAPH_PERF_SMOKE_TOLERANCE (default 1.10 = +10%).
set -eu

if [ "${1:-}" = "--if-enabled" ]; then
    shift
    if [ "${DIGRAPH_CI_PERF:-0}" != "1" ]; then
        echo "perf_smoke: DIGRAPH_CI_PERF!=1, skipping" >&2
        exit 77
    fi
fi

cd "$(dirname "$0")/.."

SCALE="${DIGRAPH_PERF_SMOKE_SCALE:-0.05}"
TOLERANCE="${DIGRAPH_PERF_SMOKE_TOLERANCE:-1.10}"

cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-perf -j --target host_engine_scaling

cd build-perf
status=0
DIGRAPH_BENCH_SCALE="$SCALE" ./bench/host_engine_scaling || status=$?
if [ "$status" != 0 ] && [ "$status" != 2 ]; then
    echo "perf_smoke: bench failed (status $status)" >&2
    exit 1
fi

# First result row of the first family (pagerank_delta, 1 thread).
wall=$(awk -F'"wall_seconds": ' '/"engine_threads": 1,/ {
           split($2, a, ","); print a[1]; exit
       }' BENCH_engine.json)
if [ -z "$wall" ]; then
    echo "perf_smoke: could not read wall_seconds from BENCH_engine.json" >&2
    exit 1
fi

baseline_file="perf_smoke_baseline.txt"
base_scale=""
base_wall=""
if [ -f "$baseline_file" ]; then
    read -r base_scale base_wall < "$baseline_file"
fi
if [ "$base_scale" != "$SCALE" ] || [ -z "$base_wall" ]; then
    printf '%s %s\n' "$SCALE" "$wall" > "$baseline_file"
    echo "perf_smoke: recorded baseline ${wall}s (scale $SCALE)"
    exit 0
fi

regressed=$(awk -v w="$wall" -v b="$base_wall" -v t="$TOLERANCE" \
    'BEGIN { print (w > b * t) ? 1 : 0 }')
if [ "$regressed" = 1 ]; then
    echo "perf_smoke: FAIL — 1-thread wall ${wall}s exceeds baseline" \
         "${base_wall}s by more than $TOLERANCE" >&2
    exit 1
fi

improved=$(awk -v w="$wall" -v b="$base_wall" \
    'BEGIN { print (w < b) ? 1 : 0 }')
if [ "$improved" = 1 ]; then
    printf '%s %s\n' "$SCALE" "$wall" > "$baseline_file"
    echo "perf_smoke: pass — ${wall}s (baseline ratcheted from ${base_wall}s)"
else
    echo "perf_smoke: pass — ${wall}s (baseline ${base_wall}s)"
fi
