/**
 * @file
 * Shared infrastructure for the per-figure bench binaries: dataset and
 * engine caches, uniform system runners, and the paper-style table
 * printer. Each bench binary registers its experiment points as
 * google-benchmark benchmarks (one iteration each), then prints the rows
 * the corresponding paper table/figure reports.
 *
 * Environment knobs:
 *   DIGRAPH_BENCH_SCALE  dataset scale factor (default 0.4)
 *   DIGRAPH_BENCH_GPUS   default simulated GPU count (default 4)
 */

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "algorithms/factory.hpp"
#include "baselines/async_engine.hpp"
#include "baselines/bsp_engine.hpp"
#include "baselines/sequential.hpp"
#include "engine/digraph_engine.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "metrics/run_report.hpp"

namespace digraph::bench {

/** Dataset scale factor (env DIGRAPH_BENCH_SCALE, default 0.4). */
double benchScale();

/** Default simulated GPU count (env DIGRAPH_BENCH_GPUS, default 4). */
unsigned benchGpus();

/** Simulated platform with @p gpus devices (K80-like geometry). */
gpusim::PlatformConfig benchPlatform(unsigned gpus);

/** Cached dataset stand-in at benchScale(). */
const graph::DirectedGraph &dataset(graph::Dataset d);

/** Cached dataset at an explicit scale. */
const graph::DirectedGraph &dataset(graph::Dataset d, double scale);

/**
 * Cached DiGraph engine for (dataset, mode, gpus) at benchScale().
 * Reused across algorithms so preprocessing happens once.
 */
engine::DiGraphEngine &engineFor(graph::Dataset d,
                                 engine::ExecutionMode mode,
                                 unsigned gpus);

/** The comparison systems of the paper's evaluation. */
inline const std::vector<std::string> kSystems = {"gunrock", "groute",
                                                  "digraph"};

/**
 * Run @p system ("gunrock" = BSP baseline, "groute" = async baseline,
 * "digraph", "digraph-t", "digraph-w") on dataset @p d with @p algo_name.
 */
metrics::RunReport runSystem(const std::string &system, graph::Dataset d,
                             const std::string &algo_name, unsigned gpus);

/** Run a system on an explicit graph (no caching). */
metrics::RunReport runSystemOn(const std::string &system,
                               const graph::DirectedGraph &g,
                               const std::string &algo_name,
                               unsigned gpus);

/** One printable row of a result table. */
struct Row
{
    std::vector<std::string> cells;
};

/** Collected rows printed by printTable() at the end of main(). */
class Table
{
  public:
    explicit Table(std::string title, std::vector<std::string> header)
        : title_(std::move(title)), header_(std::move(header))
    {}

    /** Append a row (cells as strings). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with 4 significant digits. */
    static std::string num(double value);

    /** mine/base as a cell, "-" when the base is zero. */
    static std::string ratio(double mine, double base);

    /** Print the table to stdout, fixed-width columns. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/** Global registry of reports produced by registered benchmarks, keyed
 *  "system/algorithm/dataset". */
std::map<std::string, metrics::RunReport> &reportRegistry();

/**
 * Register one google-benchmark per (system x algorithm x dataset) point;
 * each runs once and stores its RunReport in reportRegistry().
 */
void registerComparison(const std::string &prefix,
                        const std::vector<std::string> &systems,
                        const std::vector<std::string> &algos);

/** Fetch a report stored by registerComparison(). */
const metrics::RunReport &report(const std::string &system,
                                 const std::string &algo,
                                 graph::Dataset d);

} // namespace digraph::bench

/** Standard main for a bench binary: run google-benchmark, then print the
 *  tables the figure reports via the provided callback. */
#define DIGRAPH_BENCH_MAIN(print_summary)                                  \
    int main(int argc, char **argv)                                       \
    {                                                                      \
        ::benchmark::Initialize(&argc, argv);                              \
        ::benchmark::RunSpecifiedBenchmarks();                             \
        print_summary();                                                   \
        return 0;                                                          \
    }
