/**
 * @file
 * Figure 12 — traffic volume of PageRank on 4 GPUs (host<->device +
 * device<->device transfers + bytes streamed from global memory into the
 * cores), normalized to Gunrock. The paper reports DiGraph lowest under
 * all circumstances.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig12", kSystems, {"pagerank"});
    return 0;
}();

void
printSummary()
{
    Table table("Fig 12 — pagerank traffic volume normalized to Gunrock "
                "(lower is better)",
                {"system", "dblp", "cnr", "ljournal", "webbase", "it04",
                 "twitter"});
    for (const auto &system : kSystems) {
        std::vector<std::string> row{system};
        for (const auto d : graph::allDatasets()) {
            const double base = static_cast<double>(
                report("gunrock", "pagerank", d).trafficVolume());
            const double mine = static_cast<double>(
                report(system, "pagerank", d).trafficVolume());
            row.push_back(Table::ratio(mine, base));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
