/**
 * @file
 * Figure 14 — impact of the bidirectional-edge ratio on PageRank over the
 * webbase stand-in: reverse edges are added until 40..100% of edges have
 * a bidirectional partner, and all three systems run on each variant.
 * The paper notes DiGraph still wins at 100% even though the
 * dependency-aware dispatching becomes infeasible there (the whole graph
 * collapses into one SCC).
 */

#include <map>

#include "bench_common.hpp"
#include "graph/transform.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const std::vector<double> kRatios = {0.4, 0.55, 0.7, 0.85, 1.0};

std::map<std::string, double> g_cycles; // "system/ratio"

void
BM_point(benchmark::State &state, const std::string &system, double ratio)
{
    static std::map<double, std::unique_ptr<graph::DirectedGraph>> cache;
    auto &slot = cache[ratio];
    if (!slot) {
        slot = std::make_unique<graph::DirectedGraph>(
            graph::withBidirectionalRatio(
                dataset(graph::Dataset::webbase), ratio));
    }
    metrics::RunReport r;
    for (auto _ : state)
        r = runSystemOn(system, *slot, "pagerank", benchGpus());
    g_cycles[system + "/" + Table::num(ratio)] = r.sim_cycles;
    state.counters["sim_cycles"] = r.sim_cycles;
}

const int registered = [] {
    for (const auto &system : kSystems) {
        for (const double ratio : kRatios) {
            benchmark::RegisterBenchmark(
                ("fig14/" + system + "/bidir:" + Table::num(ratio))
                    .c_str(),
                [system, ratio](benchmark::State &s) {
                    BM_point(s, system, ratio);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

void
printSummary()
{
    Table table("Fig 14 — pagerank on webbase vs bidirectional-edge "
                "ratio (sim cycles; paper: DiGraph lowest throughout)",
                {"system", "40%", "55%", "70%", "85%", "100%"});
    for (const auto &system : kSystems) {
        std::vector<std::string> row{system};
        for (const double ratio : kRatios)
            row.push_back(
                Table::num(g_cycles[system + "/" + Table::num(ratio)]));
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
