/**
 * @file
 * Extension bench (the paper's Section 6 future work): evolving directed
 * graphs. Measures warm incremental re-runs against cold re-runs after
 * edge-insertion batches of growing size, for SSSP and Katz centrality
 * over the webbase stand-in.
 */

#include <map>

#include "algorithms/katz.hpp"
#include "algorithms/sssp.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "engine/evolving.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const std::vector<std::size_t> kBatchSizes = {8, 64, 512};

struct Point
{
    double warm_edges = 0.0;
    double cold_edges = 0.0;
    double warm_cycles = 0.0;
    double cold_cycles = 0.0;
};

std::map<std::string, Point> g_points; // "algo/batch"

std::vector<graph::Edge>
randomBatch(const graph::DirectedGraph &g, std::size_t count,
            std::uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<graph::Edge> batch;
    batch.reserve(count);
    while (batch.size() < count) {
        const auto a =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        const auto b =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (a != b)
            batch.push_back({a, b, 1.0 + rng.nextDouble() * 9.0});
    }
    return batch;
}

void
BM_point(benchmark::State &state, const std::string &algo_name,
         std::size_t batch_size)
{
    Point point;
    for (auto _ : state) {
        engine::EngineOptions opts;
        opts.platform = benchPlatform(benchGpus());
        engine::EvolvingEngine evolving(
            graph::makeDataset(graph::Dataset::webbase, benchScale()),
            opts);

        const algorithms::Sssp sssp(0);
        const algorithms::Katz katz(evolving.graph());
        const algorithms::Algorithm &algo =
            algo_name == "sssp"
                ? static_cast<const algorithms::Algorithm &>(sssp)
                : static_cast<const algorithms::Algorithm &>(katz);

        evolving.run(algo);
        const auto batch =
            randomBatch(evolving.graph(), batch_size, 1234);
        const auto warm = evolving.insertAndRun(algo, batch);
        point.warm_edges = static_cast<double>(
            warm.run.edge_processings);
        point.warm_cycles = warm.run.sim_cycles;

        // Cold reference on the same evolved snapshot.
        const auto cold =
            runSystemOn("digraph", evolving.graph(), algo_name,
                        benchGpus());
        point.cold_edges = static_cast<double>(cold.edge_processings);
        point.cold_cycles = cold.sim_cycles;
    }
    g_points[algo_name + "/" + std::to_string(batch_size)] = point;
    state.counters["warm_edges"] = point.warm_edges;
    state.counters["cold_edges"] = point.cold_edges;
}

const int registered = [] {
    for (const std::string algo : {"sssp", "katz"}) {
        for (const std::size_t batch : kBatchSizes) {
            benchmark::RegisterBenchmark(
                ("evolving/" + algo + "/batch:" + std::to_string(batch))
                    .c_str(),
                [algo, batch](benchmark::State &s) {
                    BM_point(s, algo, batch);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

void
printSummary()
{
    Table table("Evolving graphs (extension) — warm incremental re-run "
                "vs cold re-run on webbase after edge insertions",
                {"algorithm", "batch", "warm/cold edges processed",
                 "warm/cold sim cycles"});
    for (const std::string algo : {"sssp", "katz"}) {
        for (const std::size_t batch : kBatchSizes) {
            const auto &p =
                g_points[algo + "/" + std::to_string(batch)];
            table.addRow({algo, std::to_string(batch),
                          Table::ratio(p.warm_edges, p.cold_edges),
                          Table::ratio(p.warm_cycles, p.cold_cycles)});
        }
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
