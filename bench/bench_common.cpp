#include "bench_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hpp"
#include "metrics/trace.hpp"

namespace digraph::bench {

namespace {

metrics::RunReport runSystemImplCached(const std::string &system,
                                       graph::Dataset d,
                                       const std::string &algo_name,
                                       unsigned gpus);

} // namespace

double
benchScale()
{
    static const double scale = [] {
        const char *env = std::getenv("DIGRAPH_BENCH_SCALE");
        return env ? std::atof(env) : 0.4;
    }();
    return scale;
}

unsigned
benchGpus()
{
    static const unsigned gpus = [] {
        const char *env = std::getenv("DIGRAPH_BENCH_GPUS");
        return env ? static_cast<unsigned>(std::atoi(env)) : 4u;
    }();
    return gpus;
}

namespace {

/** DIGRAPH_BENCH_TRACE=DIR dumps one chrome trace per bench run into
 *  DIR (which must already exist); unset disables tracing entirely. */
const char *
benchTraceDir()
{
    static const char *dir = std::getenv("DIGRAPH_BENCH_TRACE");
    return dir;
}

} // namespace

gpusim::PlatformConfig
benchPlatform(unsigned gpus)
{
    gpusim::PlatformConfig pc;
    pc.num_devices = gpus;
    return pc;
}

const graph::DirectedGraph &
dataset(graph::Dataset d)
{
    return dataset(d, benchScale());
}

const graph::DirectedGraph &
dataset(graph::Dataset d, double scale)
{
    static std::map<std::pair<int, double>,
                    std::unique_ptr<graph::DirectedGraph>>
        cache;
    auto &slot = cache[{static_cast<int>(d), scale}];
    if (!slot) {
        slot = std::make_unique<graph::DirectedGraph>(
            graph::makeDataset(d, scale));
    }
    return *slot;
}

engine::DiGraphEngine &
engineFor(graph::Dataset d, engine::ExecutionMode mode, unsigned gpus)
{
    static std::map<std::tuple<int, int, unsigned>,
                    std::unique_ptr<engine::DiGraphEngine>>
        cache;
    auto &slot = cache[{static_cast<int>(d), static_cast<int>(mode),
                        gpus}];
    if (!slot) {
        engine::EngineOptions opts;
        opts.mode = mode;
        opts.platform = benchPlatform(gpus);
        slot = std::make_unique<engine::DiGraphEngine>(dataset(d), opts);
    }
    return *slot;
}

metrics::RunReport
runSystem(const std::string &system, graph::Dataset d,
          const std::string &algo_name, unsigned gpus)
{
    auto report = runSystemImplCached(system, d, algo_name, gpus);
    report.dataset = graph::datasetName(d);
    return report;
}

namespace {

metrics::RunReport
runSystemImplCached(const std::string &system, graph::Dataset d,
                    const std::string &algo_name, unsigned gpus)
{
    const graph::DirectedGraph &g = dataset(d);
    const auto algo = algorithms::makeAlgorithm(algo_name, g);
    const char *const trace_dir = benchTraceDir();
    metrics::TraceSink sink;
    auto finish = [&](metrics::RunReport report) {
        if (trace_dir) {
            sink.writeChromeJson(std::string(trace_dir) + "/" + system +
                                 "_" + algo_name + "_" +
                                 graph::datasetName(d) + ".json");
        }
        return report;
    };
    if (system == "gunrock") {
        baselines::BaselineOptions opts;
        opts.platform = benchPlatform(gpus);
        opts.trace = trace_dir ? &sink : nullptr;
        auto report = baselines::runBsp(g, *algo, opts);
        report.system = "gunrock";
        return finish(std::move(report));
    }
    if (system == "groute") {
        baselines::BaselineOptions opts;
        opts.platform = benchPlatform(gpus);
        opts.trace = trace_dir ? &sink : nullptr;
        auto report = baselines::runAsync(g, *algo, opts).report;
        report.system = "groute";
        return finish(std::move(report));
    }
    engine::ExecutionMode mode = engine::ExecutionMode::PathAsync;
    if (system == "digraph-t")
        mode = engine::ExecutionMode::VertexAsync;
    else if (system == "digraph-w")
        mode = engine::ExecutionMode::PathNoSched;
    else if (system != "digraph")
        fatal("runSystem: unknown system '", system, "'");
    auto &eng = engineFor(d, mode, gpus);
    eng.setTrace(trace_dir ? &sink : nullptr);
    auto report = eng.run(*algo);
    eng.setTrace(nullptr);
    return finish(std::move(report));
}

} // namespace

metrics::RunReport
runSystemOn(const std::string &system, const graph::DirectedGraph &g,
            const std::string &algo_name, unsigned gpus)
{
    const auto algo = algorithms::makeAlgorithm(algo_name, g);
    if (system == "gunrock") {
        baselines::BaselineOptions opts;
        opts.platform = benchPlatform(gpus);
        auto report = baselines::runBsp(g, *algo, opts);
        report.system = "gunrock";
        return report;
    }
    if (system == "groute") {
        baselines::BaselineOptions opts;
        opts.platform = benchPlatform(gpus);
        auto report = baselines::runAsync(g, *algo, opts).report;
        report.system = "groute";
        return report;
    }
    engine::EngineOptions opts;
    opts.platform = benchPlatform(gpus);
    if (system == "digraph-t")
        opts.mode = engine::ExecutionMode::VertexAsync;
    else if (system == "digraph-w")
        opts.mode = engine::ExecutionMode::PathNoSched;
    else if (system != "digraph")
        fatal("runSystemOn: unknown system '", system, "'");
    engine::DiGraphEngine eng(g, opts);
    return eng.run(*algo);
}

std::map<std::string, metrics::RunReport> &
reportRegistry()
{
    static std::map<std::string, metrics::RunReport> registry;
    return registry;
}

void
registerComparison(const std::string &prefix,
                   const std::vector<std::string> &systems,
                   const std::vector<std::string> &algos)
{
    for (const auto &system : systems) {
        for (const auto &algo : algos) {
            for (const auto d : graph::allDatasets()) {
                const std::string key = system + "/" + algo + "/" +
                                        graph::datasetName(d);
                benchmark::RegisterBenchmark(
                    (prefix + "/" + key).c_str(),
                    [system, algo, d](benchmark::State &state) {
                        metrics::RunReport r;
                        for (auto _ : state)
                            r = runSystem(system, d, algo, benchGpus());
                        state.counters["sim_cycles"] = r.sim_cycles;
                        state.counters["updates"] =
                            static_cast<double>(r.vertex_updates);
                        state.counters["traffic_bytes"] =
                            static_cast<double>(r.trafficVolume());
                        state.counters["utilization"] = r.utilization;
                        reportRegistry()[system + "/" + algo + "/" +
                                         graph::datasetName(d)] =
                            std::move(r);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
}

const metrics::RunReport &
report(const std::string &system, const std::string &algo,
       graph::Dataset d)
{
    return reportRegistry().at(system + "/" + algo + "/" +
                               graph::datasetName(d));
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back({std::move(cells)});
}

std::string
Table::num(double value)
{
    std::ostringstream oss;
    oss.precision(4);
    oss << value;
    return oss.str();
}

std::string
Table::ratio(double mine, double base)
{
    if (base == 0.0)
        return "-";
    return num(mine / base);
}

void
Table::print() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const Row &row : rows_) {
        for (std::size_t c = 0;
             c < row.cells.size() && c < width.size(); ++c) {
            width[c] = std::max(width[c], row.cells[c].size());
        }
    }
    std::printf("\n== %s ==\n", title_.c_str());
    for (std::size_t c = 0; c < header_.size(); ++c)
        std::printf("%-*s  ", static_cast<int>(width[c]),
                    header_[c].c_str());
    std::printf("\n");
    for (const Row &row : rows_) {
        for (std::size_t c = 0; c < row.cells.size(); ++c) {
            std::printf("%-*s  ",
                        static_cast<int>(c < width.size() ? width[c] : 8),
                        row.cells[c].c_str());
        }
        std::printf("\n");
    }
    std::fflush(stdout);
}

} // namespace digraph::bench
