/**
 * @file
 * Host-side scaling of the parallel wave execution engine: wall-clock
 * seconds of DiGraphEngine::run() as engine_threads grows, on a workload
 * whose partitions are largely vertex-disjoint (high locality, uniform
 * degrees), so wave chunks hold many concurrent dispatches.
 *
 * Three merge-barrier families are compared (DESIGN.md §14):
 *
 *   pagerank/delta   — accumulative family through the lock-free
 *                      parallel overlay commit (delta_merge = true);
 *   pagerank/ordered — the same algorithm through the serial
 *                      ordered-replay oracle (delta_merge = false);
 *   wcc/ordered      — the bitwise family, which always replays in
 *                      order.
 *
 * Each row also splits the wall clock into compute / commutative-merge /
 * ordered-replay-barrier / schedule phases, so the table shows exactly
 * where the delta commit moves the serial-barrier time.
 *
 * This measures the HOST simulation throughput, not simulated GPU time:
 * every run produces bit-identical results and identical sim_cycles for
 * every thread count AND both merge paths (verified here); only
 * wall_seconds changes.
 *
 * Output: tables on stdout plus BENCH_engine.json in the working
 * directory. Regenerate the committed snapshot from the repo root with:
 *
 *     cmake --build build -j --target host_engine_scaling
 *     ./build/bench/host_engine_scaling
 *
 * (see EXPERIMENTS.md). Scale via DIGRAPH_BENCH_SCALE if needed.
 *
 * Exit status: nonzero when a determinism check fails, or — only on
 * hosts with >= 4 cores — when the delta-merge pagerank run fails the
 * 1.5x speedup gate at 4 threads. Single-core containers cannot exhibit
 * wall-clock speedup, so there the gate is reported but not enforced
 * (the JSON carries host_cores so readers can tell the difference).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace digraph;

graph::DirectedGraph
scalingWorkload()
{
    // Locality-heavy, low-skew graph: vertices recur only in nearby
    // paths, so most partition pairs share no vertex and the wave
    // scheduler can run them concurrently. (Hub-heavy graphs serialize
    // on the interference matrix instead — by design: concurrent stale
    // reads of a contended master would redo work.)
    graph::GeneratorConfig c;
    c.num_vertices = static_cast<VertexId>(150000 * bench::benchScale());
    c.num_edges = static_cast<EdgeId>(750000 * bench::benchScale());
    c.degree_skew = 1.0;
    c.locality = 0.97;
    c.locality_window = 24;
    c.scc_core_fraction = 0.25;
    c.seed = 23;
    return graph::generate(c);
}

struct Config
{
    const char *key;   // JSON/label key
    const char *algo;  // factory name
    bool delta_merge;  // EngineOptions::delta_merge
};

struct Point
{
    std::size_t threads;
    metrics::RunReport best; // rep with the smallest wall_seconds
};

struct FamilyRun
{
    Config cfg;
    std::vector<Point> points;
    bool deterministic = true;
};

const std::vector<std::size_t> kThreadCounts = {1, 2, 4, 8};
constexpr int kReps = 3;

FamilyRun
runFamily(const graph::DirectedGraph &g, const Config &cfg)
{
    FamilyRun fam;
    fam.cfg = cfg;
    const auto algo = algorithms::makeAlgorithm(cfg.algo, g);
    for (const std::size_t threads : kThreadCounts) {
        engine::EngineOptions opts;
        opts.platform = bench::benchPlatform(bench::benchGpus());
        opts.engine_threads = threads;
        opts.delta_merge = cfg.delta_merge;
        engine::DiGraphEngine eng(g, opts);

        metrics::RunReport best;
        for (int rep = 0; rep < kReps; ++rep) {
            auto report = eng.run(*algo);
            if (rep == 0 || report.wall_seconds < best.wall_seconds)
                best = std::move(report);
        }
        fam.points.push_back({threads, std::move(best)});
    }
    // Sanity: thread count must not change results.
    for (const Point &pt : fam.points) {
        if (pt.best.final_state != fam.points.front().best.final_state ||
            pt.best.sim_cycles != fam.points.front().best.sim_cycles) {
            fam.deterministic = false;
        }
    }
    return fam;
}

void
printFamily(const FamilyRun &fam)
{
    const double base = fam.points.front().best.wall_seconds;
    bench::Table table(
        std::string("Host engine scaling (") + fam.cfg.key +
            ", wall seconds per run)",
        {"threads", "wall_s", "speedup", "compute_s", "merge_s",
         "barrier_s", "schedule_s", "waves"});
    for (const Point &pt : fam.points) {
        table.addRow({std::to_string(pt.threads),
                      bench::Table::num(pt.best.wall_seconds),
                      bench::Table::ratio(base, pt.best.wall_seconds),
                      bench::Table::num(pt.best.wall_compute_seconds),
                      bench::Table::num(pt.best.wall_merge_seconds),
                      bench::Table::num(pt.best.wall_barrier_seconds),
                      bench::Table::num(pt.best.wall_schedule_seconds),
                      std::to_string(pt.best.waves)});
    }
    table.print();
}

double
wallAt(const FamilyRun &fam, std::size_t threads)
{
    for (const Point &pt : fam.points)
        if (pt.threads == threads)
            return pt.best.wall_seconds;
    return 0.0;
}

} // namespace

int
main()
{
    const auto g = scalingWorkload();
    const std::vector<Config> configs = {
        {"pagerank_delta", "pagerank", true},
        {"pagerank_ordered", "pagerank", false},
        {"wcc_ordered", "wcc", false},
    };

    std::vector<FamilyRun> families;
    for (const Config &cfg : configs)
        families.push_back(runFamily(g, cfg));

    const FamilyRun &delta_fam = families[0];
    const FamilyRun &oracle_fam = families[1];

    // The lock-free delta commit must be a pure performance change: the
    // oracle run's results are the ground truth.
    bool merge_equivalent =
        delta_fam.points.front().best.final_state ==
            oracle_fam.points.front().best.final_state &&
        delta_fam.points.front().best.sim_cycles ==
            oracle_fam.points.front().best.sim_cycles;

    bool deterministic = merge_equivalent;
    for (const FamilyRun &fam : families) {
        printFamily(fam);
        deterministic = deterministic && fam.deterministic;
    }

    // Wall-clock speedup is bounded by the host cores actually present
    // (hardware_concurrency); on a single-core container the curve is
    // flat and the parallel fraction below is the honest scaling signal.
    const unsigned host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    const bool single_core_host = host_cores < 2;
    const double base = wallAt(delta_fam, 1);
    const double parallel_fraction =
        base > 0.0
            ? delta_fam.points.front().best.wall_compute_seconds / base
            : 0.0;
    const double amdahl_4t =
        1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 4.0);
    const double wall4 = wallAt(delta_fam, 4);
    const double speedup_4t = wall4 > 0.0 ? base / wall4 : 0.0;
    const bool gate_enforced = host_cores >= 4;
    const bool gate_passed = !gate_enforced || speedup_4t > 1.5;

    std::printf("deterministic across thread counts and merge paths: "
                "%s\n",
                deterministic ? "yes" : "NO");
    std::printf("delta-merge final state == ordered-oracle final state: "
                "%s\n",
                merge_equivalent ? "yes" : "NO");
    std::printf("host cores: %u, parallel fraction (compute/wall at 1 "
                "thread): %.2f, Amdahl-projected speedup at 4 cores: "
                "%.2fx\n",
                host_cores, parallel_fraction, amdahl_4t);
    std::printf("delta-merge speedup at 4 threads: %.2fx (gate >1.5x "
                "%s: %s)\n",
                speedup_4t, gate_enforced ? "ENFORCED" : "not enforced",
                gate_passed ? "pass" : "FAIL");
    if (host_cores < 4)
        std::printf("note: host has fewer than 4 cores; wall-clock "
                    "speedup is capped at %ux regardless of "
                    "engine_threads\n",
                    host_cores);

    std::FILE *out = std::fopen("BENCH_engine.json", "w");
    if (!out) {
        std::fprintf(stderr, "cannot write BENCH_engine.json\n");
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"host_engine_scaling\",\n");
    std::fprintf(out, "  \"workload\": {\"vertices\": %llu, "
                      "\"edges\": %llu, \"partitions\": %llu},\n",
                 static_cast<unsigned long long>(g.numVertices()),
                 static_cast<unsigned long long>(g.numEdges()),
                 static_cast<unsigned long long>(
                     delta_fam.points.front().best.num_partitions));
    std::fprintf(out, "  \"repetitions\": %d,\n", kReps);
    std::fprintf(out, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(out, "  \"single_core_host\": %s,\n",
                 single_core_host ? "true" : "false");
    std::fprintf(out, "  \"parallel_fraction\": %.4f,\n",
                 parallel_fraction);
    std::fprintf(out, "  \"amdahl_projected_speedup_4_cores\": %.3f,\n",
                 amdahl_4t);
    std::fprintf(out, "  \"delta_merge_speedup_4_threads\": %.3f,\n",
                 speedup_4t);
    std::fprintf(out, "  \"speedup_gate_enforced\": %s,\n",
                 gate_enforced ? "true" : "false");
    std::fprintf(out, "  \"delta_matches_ordered_oracle\": %s,\n",
                 merge_equivalent ? "true" : "false");
    std::fprintf(out, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "  \"families\": [\n");
    for (std::size_t f = 0; f < families.size(); ++f) {
        const FamilyRun &fam = families[f];
        const double fam_base = fam.points.front().best.wall_seconds;
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"algorithm\": \"%s\", "
                     "\"kernel\": \"%s\", \"delta_merge\": %s, "
                     "\"results\": [\n",
                     fam.cfg.key, fam.cfg.algo,
                     fam.points.front().best.kernel.c_str(),
                     fam.points.front().best.kernel_delta_merge
                         ? "true"
                         : "false");
        for (std::size_t i = 0; i < fam.points.size(); ++i) {
            const auto &r = fam.points[i].best;
            std::fprintf(
                out,
                "      {\"engine_threads\": %zu, "
                "\"wall_seconds\": %.6f, "
                "\"speedup_vs_serial\": %.3f, "
                "\"wall_compute_seconds\": %.6f, "
                "\"wall_merge_seconds\": %.6f, "
                "\"wall_barrier_seconds\": %.6f, "
                "\"wall_schedule_seconds\": %.6f, \"waves\": %llu, "
                "\"sim_cycles\": %.1f}%s\n",
                fam.points[i].threads, r.wall_seconds,
                r.wall_seconds > 0.0 ? fam_base / r.wall_seconds : 0.0,
                r.wall_compute_seconds, r.wall_merge_seconds,
                r.wall_barrier_seconds, r.wall_schedule_seconds,
                static_cast<unsigned long long>(r.waves), r.sim_cycles,
                i + 1 < fam.points.size() ? "," : "");
        }
        std::fprintf(out, "    ]}%s\n",
                     f + 1 < families.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_engine.json\n");
    if (!deterministic)
        return 1;
    return gate_passed ? 0 : 2;
}
