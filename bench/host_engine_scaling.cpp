/**
 * @file
 * Host-side scaling of the parallel wave execution engine: wall-clock
 * seconds of DiGraphEngine::run() as engine_threads grows, on a workload
 * whose partitions are largely vertex-disjoint (high locality, uniform
 * degrees), so wave chunks hold many concurrent dispatches.
 *
 * This measures the HOST simulation throughput, not simulated GPU time:
 * every run produces bit-identical results and identical sim_cycles for
 * every thread count (verified here); only wall_seconds changes.
 *
 * Output: a table on stdout plus BENCH_engine.json in the working
 * directory. Regenerate the committed snapshot from the repo root with:
 *
 *     cmake --build build -j --target host_engine_scaling
 *     ./build/bench/host_engine_scaling
 *
 * (see EXPERIMENTS.md). Scale via DIGRAPH_BENCH_SCALE if needed.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace digraph;

graph::DirectedGraph
scalingWorkload()
{
    // Locality-heavy, low-skew graph: vertices recur only in nearby
    // paths, so most partition pairs share no vertex and the wave
    // scheduler can run them concurrently. (Hub-heavy graphs serialize
    // on the interference matrix instead — by design: concurrent stale
    // reads of a contended master would redo work.)
    graph::GeneratorConfig c;
    c.num_vertices = static_cast<VertexId>(150000 * bench::benchScale());
    c.num_edges = static_cast<EdgeId>(750000 * bench::benchScale());
    c.degree_skew = 1.0;
    c.locality = 0.97;
    c.locality_window = 24;
    c.scc_core_fraction = 0.25;
    c.seed = 23;
    return graph::generate(c);
}

struct Point
{
    std::size_t threads;
    metrics::RunReport best; // rep with the smallest wall_seconds
};

} // namespace

int
main()
{
    const auto g = scalingWorkload();
    const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
    constexpr int kReps = 3;

    std::vector<Point> points;
    for (const std::size_t threads : thread_counts) {
        engine::EngineOptions opts;
        opts.platform = bench::benchPlatform(bench::benchGpus());
        opts.engine_threads = threads;
        engine::DiGraphEngine eng(g, opts);
        const auto algo = algorithms::makeAlgorithm("pagerank", g);

        metrics::RunReport best;
        for (int rep = 0; rep < kReps; ++rep) {
            auto report = eng.run(*algo);
            if (rep == 0 || report.wall_seconds < best.wall_seconds)
                best = std::move(report);
        }
        points.push_back({threads, std::move(best)});
    }

    // Sanity: thread count must not change results.
    bool deterministic = true;
    for (const Point &pt : points) {
        if (pt.best.final_state != points.front().best.final_state ||
            pt.best.sim_cycles != points.front().best.sim_cycles) {
            deterministic = false;
        }
    }

    // Wall-clock speedup is bounded by the host cores actually present
    // (hardware_concurrency); on a single-core container the curve is
    // flat and the parallel fraction below is the honest scaling signal.
    const unsigned host_cores =
        std::max(1u, std::thread::hardware_concurrency());
    const double base = points.front().best.wall_seconds;
    const double parallel_fraction =
        base > 0.0 ? points.front().best.wall_compute_seconds / base : 0.0;
    const double amdahl_4t =
        1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 4.0);

    bench::Table table(
        "Host engine scaling (pagerank, wall seconds per run)",
        {"threads", "wall_s", "speedup", "compute_s", "barrier_s",
         "schedule_s", "waves"});
    for (const Point &pt : points) {
        table.addRow({std::to_string(pt.threads),
                      bench::Table::num(pt.best.wall_seconds),
                      bench::Table::ratio(base, pt.best.wall_seconds),
                      bench::Table::num(pt.best.wall_compute_seconds),
                      bench::Table::num(pt.best.wall_barrier_seconds),
                      bench::Table::num(pt.best.wall_schedule_seconds),
                      std::to_string(pt.best.waves)});
    }
    table.print();
    std::printf("deterministic across thread counts: %s\n",
                deterministic ? "yes" : "NO");
    std::printf("host cores: %u, parallel fraction (compute/wall at 1 "
                "thread): %.2f, Amdahl-projected speedup at 4 cores: "
                "%.2fx\n",
                host_cores, parallel_fraction, amdahl_4t);
    if (host_cores < 4)
        std::printf("note: host has fewer than 4 cores; wall-clock "
                    "speedup is capped at %ux regardless of "
                    "engine_threads\n",
                    host_cores);

    std::FILE *out = std::fopen("BENCH_engine.json", "w");
    if (!out) {
        std::fprintf(stderr, "cannot write BENCH_engine.json\n");
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"host_engine_scaling\",\n");
    std::fprintf(out, "  \"workload\": {\"algorithm\": \"pagerank\", "
                      "\"vertices\": %llu, \"edges\": %llu, "
                      "\"partitions\": %llu},\n",
                 static_cast<unsigned long long>(g.numVertices()),
                 static_cast<unsigned long long>(g.numEdges()),
                 static_cast<unsigned long long>(
                     points.front().best.num_partitions));
    std::fprintf(out, "  \"repetitions\": %d,\n", kReps);
    std::fprintf(out, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(out, "  \"parallel_fraction\": %.4f,\n",
                 parallel_fraction);
    std::fprintf(out, "  \"amdahl_projected_speedup_4_cores\": %.3f,\n",
                 amdahl_4t);
    std::fprintf(out, "  \"deterministic\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "  \"results\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &r = points[i].best;
        std::fprintf(
            out,
            "    {\"engine_threads\": %zu, \"wall_seconds\": %.6f, "
            "\"speedup_vs_serial\": %.3f, \"wall_compute_seconds\": %.6f, "
            "\"wall_barrier_seconds\": %.6f, "
            "\"wall_schedule_seconds\": %.6f, \"waves\": %llu, "
            "\"sim_cycles\": %.1f}%s\n",
            points[i].threads, r.wall_seconds,
            r.wall_seconds > 0.0 ? base / r.wall_seconds : 0.0,
            r.wall_compute_seconds, r.wall_barrier_seconds,
            r.wall_schedule_seconds,
            static_cast<unsigned long long>(r.waves), r.sim_cycles,
            i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_engine.json\n");
    return deterministic ? 0 : 1;
}
