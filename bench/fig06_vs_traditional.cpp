/**
 * @file
 * Figure 6 — DiGraph against DiGraph-t (the same infrastructure driven by
 * the traditional vertex-centric asynchronous execution model instead of
 * the path-based one). Normalized graph processing time, four algorithms
 * over six graphs on 4 simulated GPUs.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig06", {"digraph", "digraph-t"},
                       algorithms::benchmarkNames());
    return 0;
}();

void
printSummary()
{
    Table table("Fig 6 — processing time of DiGraph normalized to "
                "DiGraph-t (lower is better, paper: 0.35-0.7)",
                {"algorithm", "dblp", "cnr", "ljournal", "webbase",
                 "it04", "twitter"});
    for (const auto &algo : algorithms::benchmarkNames()) {
        std::vector<std::string> row{algo};
        for (const auto d : graph::allDatasets()) {
            const double digraph =
                report("digraph", algo, d).sim_cycles;
            const double trad = report("digraph-t", algo, d).sim_cycles;
            row.push_back(Table::ratio(digraph, trad));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
