/**
 * @file
 * Figure 11 — number of vertex state updates to converge, normalized to
 * Gunrock (4 GPUs). The paper reports DiGraph needing ~0.35-0.6x of
 * Groute's updates, with the advantage growing with average distance.
 *
 * Also hosts the evolving-graph *update workload* ingestion study: a
 * sequence of edge-insertion batches driven through the evolving engine
 * with incremental ingestion (delta-journaled CSR append +
 * appendPreprocess) versus the full per-batch rebuild baseline. The
 * acceptance metric is the per-batch preprocessing time ratio; see
 * EXPERIMENTS.md "Fig 11 update workload" and BENCH_evolving.json.
 */

#include <map>

#include "algorithms/sssp.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "engine/evolving.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

// ------------------------------------------------ ingestion workload

constexpr std::size_t kIngestBatches = 8;
constexpr std::size_t kIngestBatchSize = 512;

struct IngestPoint
{
    std::size_t batches = 0;
    std::size_t inserted_edges = 0;
    double graph_s = 0.0;    // CSR extension / rebuild
    double pre_s = 0.0;      // preprocessing pipeline
    double engine_s = 0.0;   // storage + dispatch indexes
    PathId reused_paths = 0; // last batch
    PathId new_paths = 0;    // last batch
};

std::map<std::string, IngestPoint> g_ingest; // "incremental"/"full"

std::vector<graph::Edge>
updateBatch(const graph::DirectedGraph &g, std::size_t count,
            std::uint64_t seed)
{
    SplitMix64 rng(seed);
    std::vector<graph::Edge> batch;
    batch.reserve(count);
    while (batch.size() < count) {
        const auto a =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        const auto b =
            static_cast<VertexId>(rng.nextBounded(g.numVertices()));
        if (a != b)
            batch.push_back({a, b, 1.0 + rng.nextDouble() * 9.0});
    }
    return batch;
}

void
BM_ingest(benchmark::State &state, bool incremental)
{
    IngestPoint pt;
    for (auto _ : state) {
        engine::EngineOptions opts;
        opts.platform = benchPlatform(benchGpus());
        engine::EvolvingOptions evolve;
        evolve.incremental = incremental;
        evolve.full_rebuild_fraction = 0.0; // measure the pure modes
        engine::EvolvingEngine evolving(
            graph::makeDataset(graph::Dataset::webbase, benchScale()),
            opts, evolve);
        const algorithms::Sssp sssp(0);
        evolving.run(sssp);

        pt = IngestPoint{};
        for (std::size_t b = 0; b < kIngestBatches; ++b) {
            const auto batch = updateBatch(
                evolving.graph(), kIngestBatchSize, 4242 + b);
            const auto step = evolving.insertAndRun(sssp, batch);
            pt.batches += 1;
            pt.inserted_edges += step.inserted_edges;
            pt.graph_s += step.graph_seconds;
            pt.pre_s += step.preprocess_seconds;
            pt.engine_s += step.engine_seconds;
            pt.reused_paths = step.reused_paths;
            pt.new_paths = step.new_paths;
        }
    }
    g_ingest[incremental ? "incremental" : "full"] = pt;
    state.counters["preprocess_s_per_batch"] =
        pt.pre_s / static_cast<double>(pt.batches);
    state.counters["graph_s_per_batch"] =
        pt.graph_s / static_cast<double>(pt.batches);
    state.counters["engine_s_per_batch"] =
        pt.engine_s / static_cast<double>(pt.batches);
}

void
printIngestSummary()
{
    if (g_ingest.empty())
        return;
    Table table("Fig 11 update workload — per-batch ingestion seconds "
                "on webbase (" +
                    std::to_string(kIngestBatches) + " batches of " +
                    std::to_string(kIngestBatchSize) + " insertions)",
                {"mode", "graph", "preprocess", "engine", "total"});
    for (const std::string mode : {"full", "incremental"}) {
        const auto it = g_ingest.find(mode);
        if (it == g_ingest.end())
            continue;
        const auto &p = it->second;
        const auto n = static_cast<double>(
            std::max<std::size_t>(1, p.batches));
        table.addRow({mode, Table::num(p.graph_s / n),
                      Table::num(p.pre_s / n),
                      Table::num(p.engine_s / n),
                      Table::num((p.graph_s + p.pre_s + p.engine_s) /
                                 n)});
    }
    table.print();
    if (g_ingest.count("full") && g_ingest.count("incremental")) {
        const auto &f = g_ingest["full"];
        const auto &i = g_ingest["incremental"];
        Table speedup("Fig 11 update workload — full/incremental "
                      "speedup (higher is better)",
                      {"metric", "speedup"});
        speedup.addRow({"preprocess", Table::ratio(f.pre_s, i.pre_s)});
        speedup.addRow(
            {"graph build", Table::ratio(f.graph_s, i.graph_s)});
        speedup.addRow(
            {"total ingestion",
             Table::ratio(f.graph_s + f.pre_s + f.engine_s,
                          i.graph_s + i.pre_s + i.engine_s)});
        speedup.print();
    }
}

const int registered = [] {
    registerComparison("fig11", kSystems, algorithms::benchmarkNames());
    for (const bool incremental : {false, true}) {
        benchmark::RegisterBenchmark(
            (std::string("fig11/ingest/") +
             (incremental ? "incremental" : "full"))
                .c_str(),
            [incremental](benchmark::State &s) {
                BM_ingest(s, incremental);
            })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    return 0;
}();

void
printSummary()
{
    for (const auto &algo : algorithms::benchmarkNames()) {
        // Skipped under --benchmark_filter runs that exclude the
        // comparison points (e.g. the ingest-only CI smoke).
        if (!reportRegistry().count("gunrock/" + algo + "/" +
                                    graph::datasetName(
                                        graph::allDatasets().front())))
            continue;
        Table table("Fig 11 — " + algo +
                        ": vertex updates normalized to Gunrock (lower "
                        "is better)",
                    {"system", "dblp", "cnr", "ljournal", "webbase",
                     "it04", "twitter"});
        for (const auto &system : kSystems) {
            std::vector<std::string> row{system};
            for (const auto d : graph::allDatasets()) {
                const double base = static_cast<double>(
                    report("gunrock", algo, d).vertex_updates);
                const double mine = static_cast<double>(
                    report(system, algo, d).vertex_updates);
                row.push_back(Table::ratio(mine, base));
            }
            table.addRow(row);
        }
        table.print();
    }
    printIngestSummary();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
