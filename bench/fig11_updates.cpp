/**
 * @file
 * Figure 11 — number of vertex state updates to converge, normalized to
 * Gunrock (4 GPUs). The paper reports DiGraph needing ~0.35-0.6x of
 * Groute's updates, with the advantage growing with average distance.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig11", kSystems, algorithms::benchmarkNames());
    return 0;
}();

void
printSummary()
{
    for (const auto &algo : algorithms::benchmarkNames()) {
        Table table("Fig 11 — " + algo +
                        ": vertex updates normalized to Gunrock (lower "
                        "is better)",
                    {"system", "dblp", "cnr", "ljournal", "webbase",
                     "it04", "twitter"});
        for (const auto &system : kSystems) {
            std::vector<std::string> row{system};
            for (const auto d : graph::allDatasets()) {
                const double base = static_cast<double>(
                    report("gunrock", algo, d).vertex_updates);
                const double mine = static_cast<double>(
                    report(system, algo, d).vertex_updates);
                row.push_back(Table::ratio(mine, base));
            }
            table.addRow(row);
        }
        table.print();
    }
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
