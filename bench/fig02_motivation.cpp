/**
 * @file
 * Figure 2 — the motivation study:
 *  (a) partition reprocessing counts of the Groute-like async engine
 *      (SSSP, all vertices initially active, 4 GPUs);
 *  (b) ratio of partitions needing reprocessing as the GPU count grows;
 *  (c) active-vertex ratio of processed (non-convergent) partitions;
 *  (d) fraction of vertices converging after exactly one update under
 *      sequential topological execution, per algorithm and graph, next
 *      to the giant-SCC vertex share.
 */

#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "graph/scc.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

struct GrouteStats
{
    double reprocessed_ratio = 0.0; // partitions processed > once
    double mean_processings = 0.0;
    double mean_active_ratio = 0.0; // Fig 2(c)
};

std::map<unsigned, GrouteStats> g_groute; // by #GPUs
std::map<std::string, double> g_single_update; // "algo/dataset"
std::map<std::string, double> g_giant_scc;     // dataset

void
BM_groute(benchmark::State &state, unsigned gpus)
{
    const auto &g = dataset(graph::Dataset::webbase);
    const auto algo = algorithms::makeAlgorithm("sssp", g);
    baselines::BaselineOptions opts;
    opts.platform = benchPlatform(gpus);
    opts.force_all_active = true; // the paper's Fig 2 methodology
    baselines::AsyncResult result;
    for (auto _ : state)
        result = baselines::runAsync(g, *algo, opts);

    GrouteStats stats;
    std::uint64_t reprocessed = 0, total_proc = 0;
    for (const auto count : result.partition_process_count) {
        total_proc += count;
        if (count > 1)
            ++reprocessed;
    }
    stats.reprocessed_ratio =
        static_cast<double>(reprocessed) /
        static_cast<double>(result.partition_process_count.size());
    stats.mean_processings =
        static_cast<double>(total_proc) /
        static_cast<double>(result.partition_process_count.size());
    double active_sum = 0.0;
    for (const double r : result.dispatch_active_ratio)
        active_sum += r;
    stats.mean_active_ratio =
        result.dispatch_active_ratio.empty()
            ? 0.0
            : active_sum / result.dispatch_active_ratio.size();
    g_groute[gpus] = stats;
    state.counters["reprocessed%"] = stats.reprocessed_ratio * 100.0;
    state.counters["mean_procs"] = stats.mean_processings;
    state.counters["active%"] = stats.mean_active_ratio * 100.0;
}

void
BM_topological(benchmark::State &state, graph::Dataset d,
               const std::string &algo_name)
{
    const auto &g = dataset(d);
    const auto algo = algorithms::makeAlgorithm(algo_name, g);
    baselines::SequentialResult result;
    for (auto _ : state)
        result = baselines::runTopological(g, *algo);
    const double frac = result.singleUpdateFraction();
    g_single_update[algo_name + "/" + graph::datasetName(d)] = frac;
    if (!g_giant_scc.count(graph::datasetName(d))) {
        g_giant_scc[graph::datasetName(d)] =
            graph::computeScc(g).giantFraction();
    }
    state.counters["one_update%"] = frac * 100.0;
}

const int registered = [] {
    for (unsigned gpus = 1; gpus <= 4; ++gpus) {
        benchmark::RegisterBenchmark(
            ("fig02ab/groute_sssp_webbase/gpus:" +
             std::to_string(gpus))
                .c_str(),
            [gpus](benchmark::State &s) { BM_groute(s, gpus); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (const auto d : graph::allDatasets()) {
        for (const auto &a : algorithms::benchmarkNames()) {
            benchmark::RegisterBenchmark(
                ("fig02d/" + a + "/" + graph::datasetName(d)).c_str(),
                [d, a](benchmark::State &s) { BM_topological(s, d, a); })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

void
printSummary()
{
    Table ab("Fig 2(a,b) — Groute-like async engine, SSSP over webbase: "
             "partition reprocessing vs #GPUs",
             {"#GPUs", "reprocessed-partitions%", "mean processings",
              "Fig2(c) mean active-vertex% per processed partition"});
    for (const auto &[gpus, stats] : g_groute) {
        ab.addRow({std::to_string(gpus),
                   Table::num(stats.reprocessed_ratio * 100.0),
                   Table::num(stats.mean_processings),
                   Table::num(stats.mean_active_ratio * 100.0)});
    }
    ab.print();

    Table d_table("Fig 2(d) — vertices needing exactly one update under "
                  "sequential topological execution (%)",
                  {"dataset", "pagerank", "adsorption", "sssp", "kcore",
                   "giantSCC-vertex%"});
    for (const auto ds : graph::allDatasets()) {
        const std::string name = graph::datasetName(ds);
        std::vector<std::string> row{name};
        for (const auto &a : algorithms::benchmarkNames())
            row.push_back(Table::num(
                g_single_update[a + "/" + name] * 100.0));
        row.push_back(Table::num(g_giant_scc[name] * 100.0));
        d_table.addRow(row);
    }
    d_table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
