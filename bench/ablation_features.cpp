/**
 * @file
 * Ablation study (beyond the paper's figures): each DiGraph feature is
 * toggled in isolation on PageRank over cnr and webbase — dependency-
 * aware dispatching, work stealing, proxy vertices, head-to-tail path
 * merging, hot-first (degree-sorted) traversal, and the D_MAX bound.
 */

#include <functional>
#include <map>

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

struct Variant
{
    std::string name;
    std::function<void(engine::EngineOptions &)> apply;
};

const std::vector<Variant> &
variants()
{
    static const std::vector<Variant> v = {
        {"baseline", [](engine::EngineOptions &) {}},
        {"no-dag-dispatch",
         [](engine::EngineOptions &o) { o.dag_dispatch = false; }},
        {"no-work-stealing",
         [](engine::EngineOptions &o) { o.work_stealing = false; }},
        {"no-proxy",
         [](engine::EngineOptions &o) { o.use_proxy = false; }},
        {"no-merge",
         [](engine::EngineOptions &o) {
             o.preprocess.enable_merge = false;
         }},
        {"no-hot-first",
         [](engine::EngineOptions &o) {
             o.preprocess.decompose.degree_sorted = false;
         }},
        {"dmax-4",
         [](engine::EngineOptions &o) {
             o.preprocess.decompose.d_max = 4;
         }},
        {"dmax-64",
         [](engine::EngineOptions &o) {
             o.preprocess.decompose.d_max = 64;
         }},
    };
    return v;
}

struct Point
{
    double sim_cycles = 0.0;
    double updates = 0.0;
    double avg_path_len = 0.0;
};

std::map<std::string, Point> g_points; // "variant/dataset"

void
BM_point(benchmark::State &state, const Variant &variant,
         graph::Dataset d)
{
    const auto &g = dataset(d);
    Point point;
    for (auto _ : state) {
        engine::EngineOptions opts;
        opts.platform = benchPlatform(benchGpus());
        variant.apply(opts);
        engine::DiGraphEngine eng(g, opts);
        const auto algo = algorithms::makeAlgorithm("pagerank", g);
        const auto r = eng.run(*algo);
        point.sim_cycles = r.sim_cycles;
        point.updates = static_cast<double>(r.vertex_updates);
        point.avg_path_len = eng.preprocessed().paths.avgLength();
    }
    g_points[variant.name + "/" + graph::datasetName(d)] = point;
    state.counters["sim_cycles"] = point.sim_cycles;
    state.counters["updates"] = point.updates;
}

const int registered = [] {
    for (const auto &variant : variants()) {
        for (const auto d :
             {graph::Dataset::cnr, graph::Dataset::webbase}) {
            benchmark::RegisterBenchmark(
                ("ablation/" + variant.name + "/" +
                 graph::datasetName(d))
                    .c_str(),
                [&variant, d](benchmark::State &s) {
                    BM_point(s, variant, d);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

void
printSummary()
{
    Table table("Ablation — pagerank, DiGraph variants (cycles/updates "
                "normalized to the full system)",
                {"variant", "cnr cycles", "cnr updates", "cnr pathLen",
                 "webbase cycles", "webbase updates", "webbase pathLen"});
    for (const auto &variant : variants()) {
        std::vector<std::string> row{variant.name};
        for (const auto d :
             {graph::Dataset::cnr, graph::Dataset::webbase}) {
            const auto &base =
                g_points["baseline/" + graph::datasetName(d)];
            const auto &p =
                g_points[variant.name + "/" + graph::datasetName(d)];
            row.push_back(Table::num(
                base.sim_cycles > 0 ? p.sim_cycles / base.sim_cycles
                                    : 0.0));
            row.push_back(Table::num(
                base.updates > 0 ? p.updates / base.updates : 0.0));
            row.push_back(Table::num(p.avg_path_len));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
