/**
 * @file
 * Table 1 — dataset properties of the six synthetic stand-ins: vertex and
 * edge counts, average degree (A_Deg) and sampled average distance
 * (A_Dis), plus the structural knobs the substitution preserves (giant
 * SCC share, bidirectional-edge ratio).
 */

#include <map>

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

std::map<std::string, graph::GraphProperties> g_props;

void
BM_measure(benchmark::State &state, graph::Dataset d)
{
    graph::GraphProperties props;
    for (auto _ : state)
        props = graph::measureProperties(dataset(d), 16);
    g_props[graph::datasetName(d)] = props;
    state.counters["V"] = static_cast<double>(props.num_vertices);
    state.counters["E"] = static_cast<double>(props.num_edges);
    state.counters["A_Deg"] = props.avg_degree;
    state.counters["A_Dis"] = props.avg_distance;
}

const int registered = [] {
    for (const auto d : graph::allDatasets()) {
        benchmark::RegisterBenchmark(
            ("table1/" + graph::datasetName(d)).c_str(),
            [d](benchmark::State &s) { BM_measure(s, d); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    return 0;
}();

void
printSummary()
{
    Table table("Table 1 — data set properties (synthetic stand-ins, "
                "scale " + Table::num(benchScale()) + ")",
                {"dataset", "#Vertices", "#Edges", "A_Deg", "A_Dis",
                 "giantSCC%", "bidir%"});
    for (const auto d : graph::allDatasets()) {
        const auto &p = g_props[graph::datasetName(d)];
        table.addRow({graph::datasetName(d),
                      std::to_string(p.num_vertices),
                      std::to_string(p.num_edges), Table::num(p.avg_degree),
                      Table::num(p.avg_distance),
                      Table::num(p.giant_scc_fraction * 100.0),
                      Table::num(p.bidirectional_ratio * 100.0)});
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
