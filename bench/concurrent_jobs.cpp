/**
 * @file
 * Concurrent-job study over the layered execution substrate: N jobs
 * (different algorithms) on ONE shared immutable EngineSubstrate vs the
 * naive alternative of giving every job its own engine with a private
 * copy of the preprocessing result.
 *
 * What the layering buys is memory: the topology (Preprocessed +
 * PathLayout + ReplicaSync + Dispatcher indexes) is paid once for any
 * number of jobs, while each job only adds its private ValuePlane +
 * transport bookkeeping. The study records both the topology bytes and
 * the end-to-end wall time of draining all jobs, and verifies that
 * shared-substrate results are bit-identical to single-job runs.
 *
 * A third variant (scheduled3) drains the same jobs through a
 * GraphService session adopting the SAME substrate, with the two-level
 * scheduler active (wave-boundary preemption quantum + worklist
 * co-scheduling) instead of the batch FIFO drain — comparing scheduled
 * against FIFO throughput on one machine.
 *
 * Output: a table on stdout plus BENCH_jobs.json in the working
 * directory. Regenerate the committed snapshot from the repo root with:
 *
 *     cmake --build build -j --target concurrent_jobs
 *     ./build/bench/concurrent_jobs
 *
 * (see EXPERIMENTS.md). Scale via DIGRAPH_BENCH_SCALE if needed.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "engine/graph_service.hpp"
#include "engine/job_manager.hpp"

namespace {

using namespace digraph;

graph::DirectedGraph
jobsWorkload()
{
    graph::GeneratorConfig c;
    c.num_vertices = static_cast<VertexId>(120000 * bench::benchScale());
    c.num_edges = static_cast<EdgeId>(600000 * bench::benchScale());
    c.degree_skew = 1.6;
    c.locality = 0.9;
    c.scc_core_fraction = 0.3;
    c.seed = 31;
    return graph::generate(c);
}

} // namespace

int
main()
{
    const auto g = jobsWorkload();
    const std::vector<std::string> job_specs = {"sssp:0", "pagerank",
                                                "wcc"};

    engine::EngineOptions opts;
    opts.platform = bench::benchPlatform(bench::benchGpus());

    // --- shared substrate: preprocess once, run all jobs on it. ---
    engine::JobManager manager(g, opts);
    for (const auto &spec : job_specs)
        manager.addJob(spec);
    WallTimer shared_timer;
    const auto shared_results = manager.runAll();
    const double shared_wall = shared_timer.seconds();

    const std::size_t topo_single = manager.sharedBytes();
    const std::size_t topo_shared = manager.sharedBytes(); // paid once
    std::size_t shared_job_bytes = 0;
    for (const auto &job : shared_results)
        shared_job_bytes += job.job_state_bytes;

    // --- naive: every job owns a full engine with its own copy of the
    // preprocessing result (topology duplicated per job). ---
    std::size_t topo_naive = 0;
    std::size_t naive_job_bytes = 0;
    WallTimer naive_timer;
    std::vector<metrics::RunReport> naive_reports;
    for (const auto &spec : job_specs) {
        partition::Preprocessed copy = manager.substrate()->pre;
        engine::DiGraphEngine eng(g, std::move(copy), opts);
        const auto algo = algorithms::makeAlgorithmSpec(spec, g);
        naive_reports.push_back(eng.run(*algo));
        topo_naive += eng.substrate()->memoryBytes();
        naive_job_bytes += eng.jobStateBytes();
    }
    const double naive_wall = naive_timer.seconds();

    // --- scheduled: the same jobs and substrate through a GraphService
    // session with the two-level scheduler active (preemption quantum +
    // co-scheduling) instead of the batch FIFO drain. ---
    // Quantum 16: coarse enough that plane cache residency survives a
    // quantum on this single-core box, fine enough that preemption
    // actually happens (the ctest suite covers quantum 1).
    engine::ServiceConfig sconfig;
    sconfig.quantum_waves = 16;
    sconfig.co_schedule = true;
    WallTimer scheduled_timer;
    engine::GraphService service(g, manager.substrate(), opts, sconfig);
    for (const auto &spec : job_specs)
        service.addJobAsync(spec);
    const auto scheduled_results = service.drain();
    const double scheduled_wall = scheduled_timer.seconds();
    const auto sched_stats = service.stats();
    std::size_t scheduled_job_bytes = 0;
    for (const auto &job : scheduled_results)
        scheduled_job_bytes += job.job_state_bytes;

    // --- bit-identity: shared-substrate jobs match dedicated engines,
    // and preempted scheduled runs match both. ---
    bool identical = true;
    for (std::size_t i = 0; i < job_specs.size(); ++i) {
        const auto &a = shared_results[i].report;
        const auto &b = naive_reports[i];
        const auto &c = scheduled_results[i].report;
        if (a.final_state != b.final_state ||
            a.sim_cycles != b.sim_cycles ||
            a.edge_processings != b.edge_processings ||
            c.final_state != b.final_state ||
            c.sim_cycles != b.sim_cycles ||
            c.edge_processings != b.edge_processings) {
            identical = false;
        }
    }

    const auto mb = [](std::size_t bytes) {
        return static_cast<double>(bytes) / 1e6;
    };
    const double ratio_shared =
        static_cast<double>(topo_shared) / static_cast<double>(topo_single);
    const double ratio_naive =
        static_cast<double>(topo_naive) / static_cast<double>(topo_single);

    bench::Table table("Concurrent jobs: shared substrate vs per-job "
                       "copies (3 jobs)",
                       {"variant", "topology_MB", "topo_ratio", "job_MB",
                        "wall_s", "jobs_per_s"});
    table.addRow({"single-job", bench::Table::num(mb(topo_single)), "1.00",
                  bench::Table::num(
                      mb(shared_results[0].job_state_bytes)),
                  "-", "-"});
    table.addRow({"shared3", bench::Table::num(mb(topo_shared)),
                  bench::Table::num(ratio_shared),
                  bench::Table::num(mb(shared_job_bytes)),
                  bench::Table::num(shared_wall),
                  bench::Table::num(shared_wall > 0.0
                                        ? 3.0 / shared_wall
                                        : 0.0)});
    table.addRow({"naive3", bench::Table::num(mb(topo_naive)),
                  bench::Table::num(ratio_naive),
                  bench::Table::num(mb(naive_job_bytes)),
                  bench::Table::num(naive_wall),
                  bench::Table::num(naive_wall > 0.0 ? 3.0 / naive_wall
                                                     : 0.0)});
    table.addRow({"scheduled3", bench::Table::num(mb(topo_shared)),
                  bench::Table::num(ratio_shared),
                  bench::Table::num(mb(scheduled_job_bytes)),
                  bench::Table::num(scheduled_wall),
                  bench::Table::num(scheduled_wall > 0.0
                                        ? 3.0 / scheduled_wall
                                        : 0.0)});
    table.print();
    std::printf("scheduler: grants=%llu parks=%llu co_scheduled=%llu "
                "peak_jobs=%zu\n",
                static_cast<unsigned long long>(sched_stats.grants),
                static_cast<unsigned long long>(sched_stats.parks),
                static_cast<unsigned long long>(
                    sched_stats.co_scheduled_grants),
                sched_stats.peak_running);
    std::printf("bit-identical to dedicated engines: %s\n",
                identical ? "yes" : "NO");

    std::FILE *out = std::fopen("BENCH_jobs.json", "w");
    if (!out) {
        std::fprintf(stderr, "cannot write BENCH_jobs.json\n");
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"concurrent_jobs\",\n");
    std::fprintf(out, "  \"jobs\": [");
    for (std::size_t i = 0; i < job_specs.size(); ++i) {
        std::fprintf(out, "\"%s\"%s", job_specs[i].c_str(),
                     i + 1 < job_specs.size() ? ", " : "");
    }
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"workload\": {\"vertices\": %llu, \"edges\": "
                      "%llu, \"partitions\": %llu},\n",
                 static_cast<unsigned long long>(g.numVertices()),
                 static_cast<unsigned long long>(g.numEdges()),
                 static_cast<unsigned long long>(
                     manager.substrate()->pre.numPartitions()));
    std::fprintf(out,
                 "  \"topology_bytes\": {\"single\": %zu, \"shared3\": "
                 "%zu, \"naive3\": %zu},\n",
                 topo_single, topo_shared, topo_naive);
    std::fprintf(out, "  \"topology_ratio_shared_vs_single\": %.3f,\n",
                 ratio_shared);
    std::fprintf(out, "  \"topology_ratio_naive_vs_single\": %.3f,\n",
                 ratio_naive);
    std::fprintf(out,
                 "  \"job_state_bytes\": {\"shared3\": %zu, \"naive3\": "
                 "%zu},\n",
                 shared_job_bytes, naive_job_bytes);
    std::fprintf(out,
                 "  \"total_bytes\": {\"shared3\": %zu, \"naive3\": "
                 "%zu},\n",
                 topo_shared + shared_job_bytes,
                 topo_naive + naive_job_bytes);
    std::fprintf(out,
                 "  \"wall_seconds\": {\"shared3\": %.6f, \"naive3\": "
                 "%.6f, \"scheduled3\": %.6f},\n",
                 shared_wall, naive_wall, scheduled_wall);
    std::fprintf(out,
                 "  \"throughput_jobs_per_second\": {\"shared3\": %.3f, "
                 "\"naive3\": %.3f, \"scheduled3\": %.3f},\n",
                 shared_wall > 0.0 ? 3.0 / shared_wall : 0.0,
                 naive_wall > 0.0 ? 3.0 / naive_wall : 0.0,
                 scheduled_wall > 0.0 ? 3.0 / scheduled_wall : 0.0);
    std::fprintf(out,
                 "  \"scheduler\": {\"quantum_waves\": %llu, \"grants\": "
                 "%llu, \"parks\": %llu, \"co_scheduled_grants\": %llu, "
                 "\"peak_running\": %zu},\n",
                 static_cast<unsigned long long>(sconfig.quantum_waves),
                 static_cast<unsigned long long>(sched_stats.grants),
                 static_cast<unsigned long long>(sched_stats.parks),
                 static_cast<unsigned long long>(
                     sched_stats.co_scheduled_grants),
                 sched_stats.peak_running);
    std::fprintf(out, "  \"bit_identical_to_single_job\": %s\n",
                 identical ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_jobs.json\n");
    return identical ? 0 : 1;
}
