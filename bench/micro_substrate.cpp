/**
 * @file
 * Microbenchmarks of the substrate operations (proper google-benchmark
 * timing loops, unlike the figure harnesses): CSR construction, Tarjan
 * SCC, the path pipeline stages, and the four-array storage build.
 * Useful for tracking regressions in the preprocessing path.
 */

#include <benchmark/benchmark.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "partition/decomposer.hpp"
#include "partition/dependency.hpp"
#include "partition/merger.hpp"
#include "partition/preprocess.hpp"
#include "storage/path_storage.hpp"

namespace {

using namespace digraph;

const graph::DirectedGraph &
graphOf(std::int64_t edges)
{
    static std::map<std::int64_t, graph::DirectedGraph> cache;
    auto it = cache.find(edges);
    if (it == cache.end()) {
        graph::GeneratorConfig c;
        c.num_vertices = static_cast<VertexId>(edges / 8);
        c.num_edges = static_cast<EdgeId>(edges);
        c.scc_core_fraction = 0.5;
        c.seed = 9;
        it = cache.emplace(edges, graph::generate(c)).first;
    }
    return it->second;
}

void
BM_csr_build(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    const auto edges = g.edgeList();
    for (auto _ : state) {
        graph::GraphBuilder builder(g.numVertices());
        builder.addEdges(edges);
        const auto built = builder.build();
        benchmark::DoNotOptimize(built.numEdges());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.numEdges()));
}

void
BM_tarjan_scc(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    for (auto _ : state) {
        const auto scc = graph::computeScc(g);
        benchmark::DoNotOptimize(scc.num_components);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.numEdges()));
}

void
BM_path_decompose(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    const partition::SccRegions regions(g);
    for (auto _ : state) {
        const auto paths =
            partition::decompose(g, {}, nullptr, &regions);
        benchmark::DoNotOptimize(paths.numPaths());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.numEdges()));
}

void
BM_path_merge(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    const partition::SccRegions regions(g);
    const auto raw = partition::decompose(g, {}, nullptr, &regions);
    for (auto _ : state) {
        const auto merged = partition::mergePaths(raw, g, {}, &regions);
        benchmark::DoNotOptimize(merged.paths.numPaths());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(raw.numPaths()));
}

void
BM_dependency_graph(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    const partition::SccRegions regions(g);
    auto raw = partition::decompose(g, {}, nullptr, &regions);
    const auto paths =
        partition::mergePaths(raw, g, {}, &regions).paths;
    for (auto _ : state) {
        const auto dep = partition::buildDependencyGraph(paths, g);
        benchmark::DoNotOptimize(dep.numEdges());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(paths.numPaths()));
}

void
BM_full_preprocess(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    partition::PreprocessOptions opts;
    opts.decompose.num_threads = 2;
    for (auto _ : state) {
        const auto pre = partition::preprocess(g, opts);
        benchmark::DoNotOptimize(pre.numPartitions());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.numEdges()));
}

void
BM_storage_build(benchmark::State &state)
{
    const auto &g = graphOf(state.range(0));
    const auto pre = partition::preprocess(g, {});
    for (auto _ : state) {
        storage::PathStorage built(pre.paths, g);
        benchmark::DoNotOptimize(built.numPaths());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(g.numEdges()));
}

BENCHMARK(BM_csr_build)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_tarjan_scc)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_path_decompose)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_path_merge)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_dependency_graph)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_full_preprocess)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(BM_storage_build)->Arg(1 << 14)->Arg(1 << 17);

} // namespace

BENCHMARK_MAIN();
