/**
 * @file
 * Figure 10 — graph processing speedup over Gunrock (4 simulated GPUs),
 * four algorithms over six graphs. The paper reports DiGraph at
 * 2.25-7.39x over Gunrock and 1.59-3.54x over Groute.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig10", kSystems, algorithms::benchmarkNames());
    return 0;
}();

void
printSummary()
{
    for (const auto &algo : algorithms::benchmarkNames()) {
        Table table("Fig 10 — " + algo +
                        ": speedup over Gunrock (higher is better)",
                    {"system", "dblp", "cnr", "ljournal", "webbase",
                     "it04", "twitter"});
        for (const auto &system : kSystems) {
            std::vector<std::string> row{system};
            for (const auto d : graph::allDatasets()) {
                const double base =
                    report("gunrock", algo, d).sim_cycles;
                const double mine = report(system, algo, d).sim_cycles;
                row.push_back(Table::ratio(base, mine));
            }
            table.addRow(row);
        }
        table.print();
    }
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
