/**
 * @file
 * Figure 16 — scalability over webbase: PageRank and SSSP processing time
 * as the GPU count grows from 1 to 4. The paper reports DiGraph scaling
 * best (time reduced by 62.9% at 4 GPUs vs 46.3% for Gunrock and 56.5%
 * for Groute).
 */

#include <map>

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

std::map<std::string, double> g_cycles; // "system/algo/gpus"

void
BM_point(benchmark::State &state, const std::string &system,
         const std::string &algo, unsigned gpus)
{
    metrics::RunReport r;
    for (auto _ : state)
        r = runSystem(system, graph::Dataset::webbase, algo, gpus);
    g_cycles[system + "/" + algo + "/" + std::to_string(gpus)] =
        r.sim_cycles;
    state.counters["sim_cycles"] = r.sim_cycles;
}

const int registered = [] {
    for (const auto &system : kSystems) {
        for (const std::string algo : {"pagerank", "sssp"}) {
            for (unsigned gpus = 1; gpus <= 4; ++gpus) {
                benchmark::RegisterBenchmark(
                    ("fig16/" + system + "/" + algo +
                     "/gpus:" + std::to_string(gpus))
                        .c_str(),
                    [system, algo, gpus](benchmark::State &s) {
                        BM_point(s, system, algo, gpus);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    return 0;
}();

void
printSummary()
{
    for (const std::string algo : {"pagerank", "sssp"}) {
        Table table("Fig 16 — " + algo +
                        " over webbase: sim cycles vs #GPUs (last column:"
                        " time reduction 1->4 GPUs)",
                    {"system", "1 GPU", "2 GPUs", "3 GPUs", "4 GPUs",
                     "reduction%"});
        for (const auto &system : kSystems) {
            std::vector<std::string> row{system};
            double first = 0.0, last = 0.0;
            for (unsigned gpus = 1; gpus <= 4; ++gpus) {
                const double c = g_cycles[system + "/" + algo + "/" +
                                          std::to_string(gpus)];
                if (gpus == 1)
                    first = c;
                last = c;
                row.push_back(Table::num(c));
            }
            row.push_back(Table::num(
                first > 0 ? 100.0 * (1.0 - last / first) : 0.0));
            table.addRow(row);
        }
        table.print();
    }
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
