/**
 * @file
 * Figure 13 — utilization ratio of loaded data (useful vertex updates per
 * vertex-value slot streamed into the cores) for PageRank, normalized to
 * Gunrock. The paper reports DiGraph highest thanks to hot/cold path
 * grouping and path-based processing.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig13", kSystems, {"pagerank"});
    return 0;
}();

void
printSummary()
{
    Table table("Fig 13 — loaded-data utilization normalized to Gunrock "
                "(higher is better)",
                {"system", "dblp", "cnr", "ljournal", "webbase", "it04",
                 "twitter"});
    for (const auto &system : kSystems) {
        std::vector<std::string> row{system};
        for (const auto d : graph::allDatasets()) {
            const double base =
                report("gunrock", "pagerank", d).loadedDataUtilization();
            const double mine =
                report(system, "pagerank", d).loadedDataUtilization();
            row.push_back(Table::ratio(mine, base));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
