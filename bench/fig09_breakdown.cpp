/**
 * @file
 * Figure 9 — execution time breakdown of the three systems (PageRank,
 * 4 GPUs): the share of simulated cycles spent on communication
 * (transfers, serialized view) versus computation, plus the CPU
 * preprocessing wall-clock. The paper's point: DiGraph's extra
 * preprocessing is tiny against the processing time it saves.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig09", kSystems, {"pagerank"});
    return 0;
}();

void
printSummary()
{
    Table table("Fig 9 — execution breakdown, pagerank on 4 GPUs",
                {"system", "dataset", "sim_cycles", "comm_cycles",
                 "comm%", "preprocess_s"});
    for (const auto &system : kSystems) {
        for (const auto d : graph::allDatasets()) {
            const auto &r = report(system, "pagerank", d);
            const double comm_pct =
                r.sim_cycles > 0
                    ? 100.0 * std::min(1.0, r.comm_cycles / r.sim_cycles)
                    : 0.0;
            table.addRow({system, graph::datasetName(d),
                          Table::num(r.sim_cycles),
                          Table::num(r.comm_cycles),
                          Table::num(comm_pct),
                          Table::num(r.preprocess_seconds)});
        }
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
