/**
 * @file
 * Figure 15 — mean GPU (SMX) utilization for PageRank on 4 GPUs. The
 * paper reports Gunrock lowest (barriers + skewed frontiers) and the two
 * asynchronous systems substantially higher.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig15", kSystems, {"pagerank"});
    return 0;
}();

void
printSummary()
{
    Table table("Fig 15 — GPU utilization of pagerank (%)",
                {"system", "dblp", "cnr", "ljournal", "webbase", "it04",
                 "twitter"});
    for (const auto &system : kSystems) {
        std::vector<std::string> row{system};
        for (const auto d : graph::allDatasets()) {
            row.push_back(Table::num(
                report(system, "pagerank", d).utilization * 100.0));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
