/**
 * @file
 * Figure 7 — DiGraph against DiGraph-w (path-based execution without the
 * per-SMX path scheduling strategy). Normalized graph processing time,
 * four algorithms over six graphs on 4 simulated GPUs.
 */

#include "bench_common.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

const int registered = [] {
    registerComparison("fig07", {"digraph", "digraph-w"},
                       algorithms::benchmarkNames());
    return 0;
}();

void
printSummary()
{
    Table table("Fig 7 — processing time of DiGraph normalized to "
                "DiGraph-w (lower is better, paper: 0.65-0.95)",
                {"algorithm", "dblp", "cnr", "ljournal", "webbase",
                 "it04", "twitter"});
    for (const auto &algo : algorithms::benchmarkNames()) {
        std::vector<std::string> row{algo};
        for (const auto d : graph::allDatasets()) {
            const double digraph =
                report("digraph", algo, d).sim_cycles;
            const double nosched =
                report("digraph-w", algo, d).sim_cycles;
            row.push_back(Table::ratio(digraph, nosched));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
