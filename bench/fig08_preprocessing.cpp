/**
 * @file
 * Figure 8 — graph preprocessing time of the three systems, normalized to
 * Gunrock. Preprocessing covers everything a system does on the CPU
 * before kernels run: CSR construction plus the system's partitioning
 * (device vertex chunks for the BSP engine, vertex-range partitions for
 * the async engine, and the full path pipeline — decomposition, merge,
 * dependency graph, DAG sketch, partitions — for DiGraph). The paper
 * reports DiGraph costing ~5-15% more than the baselines.
 */

#include <map>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "graph/builder.hpp"
#include "partition/preprocess.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

std::map<std::string, double> g_seconds; // "system/dataset"

double
csrRebuildSeconds(const graph::DirectedGraph &g)
{
    WallTimer timer;
    graph::GraphBuilder builder(g.numVertices());
    builder.addEdges(g.edgeList());
    const auto rebuilt = builder.build();
    benchmark::DoNotOptimize(rebuilt.numEdges());
    return timer.seconds();
}

void
BM_preprocess(benchmark::State &state, const std::string &system,
              graph::Dataset d)
{
    const auto &g = dataset(d);
    double seconds = 0.0;
    for (auto _ : state) {
        if (system == "gunrock") {
            seconds = csrRebuildSeconds(g);
            // Device chunking is a single linear scan.
            WallTimer timer;
            std::size_t acc = 0;
            for (VertexId v = 0; v < g.numVertices(); ++v)
                acc += g.outDegree(v);
            benchmark::DoNotOptimize(acc);
            seconds += timer.seconds();
        } else if (system == "groute") {
            seconds = csrRebuildSeconds(g);
            WallTimer timer;
            const auto bounds = baselines::vertexRangePartitions(
                g, baselines::defaultEdgeBudget(
                       g, benchPlatform(benchGpus())));
            benchmark::DoNotOptimize(bounds.size());
            seconds += timer.seconds();
        } else {
            seconds = csrRebuildSeconds(g);
            partition::PreprocessOptions opts;
            opts.decompose.num_threads = 2;
            opts.partition.edges_per_partition =
                baselines::defaultEdgeBudget(g,
                                             benchPlatform(benchGpus()));
            WallTimer timer;
            const auto pre = partition::preprocess(g, opts);
            benchmark::DoNotOptimize(pre.numPartitions());
            seconds += timer.seconds();
        }
    }
    g_seconds[system + "/" + graph::datasetName(d)] = seconds;
    state.counters["seconds"] = seconds;
}

const int registered = [] {
    for (const auto &system : kSystems) {
        for (const auto d : graph::allDatasets()) {
            benchmark::RegisterBenchmark(
                ("fig08/" + system + "/" + graph::datasetName(d)).c_str(),
                [system, d](benchmark::State &s) {
                    BM_preprocess(s, system, d);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

void
printSummary()
{
    Table table("Fig 8 — preprocessing time normalized to Gunrock "
                "(paper: DiGraph ~1.05-1.15x)",
                {"system", "dblp", "cnr", "ljournal", "webbase", "it04",
                 "twitter"});
    for (const auto &system : kSystems) {
        std::vector<std::string> row{system};
        for (const auto d : graph::allDatasets()) {
            const double base =
                g_seconds["gunrock/" + graph::datasetName(d)];
            const double mine =
                g_seconds[system + "/" + graph::datasetName(d)];
            row.push_back(Table::ratio(mine, base));
        }
        table.addRow(row);
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
