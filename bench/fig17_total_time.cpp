/**
 * @file
 * Figure 17 — total execution time of PageRank on webbase under different
 * CPU preprocessing thread counts and GPU counts. Total time combines
 * the (wall-clock) CPU preprocessing with the simulated processing time
 * converted at a nominal 1 GHz device clock. The paper's point: the
 * parallel preprocessing scales with CPU threads, and DiGraph keeps its
 * processing advantage at every machine size.
 */

#include <map>

#include "bench_common.hpp"
#include "common/timer.hpp"

using namespace digraph;
using namespace digraph::bench;

namespace {

constexpr double kCyclesPerSecond = 1e9;

struct Point
{
    double preprocess_s = 0.0;
    double sim_cycles = 0.0;
};

std::map<std::string, Point> g_points; // "threads/gpus"

void
BM_point(benchmark::State &state, unsigned threads, unsigned gpus)
{
    const auto &g = dataset(graph::Dataset::webbase);
    Point point;
    for (auto _ : state) {
        engine::EngineOptions opts;
        opts.platform = benchPlatform(gpus);
        opts.preprocess.decompose.num_threads = threads;
        WallTimer timer;
        engine::DiGraphEngine eng(g, opts);
        point.preprocess_s = timer.seconds();
        const auto algo = algorithms::makeAlgorithm("pagerank", g);
        point.sim_cycles = eng.run(*algo).sim_cycles;
    }
    g_points[std::to_string(threads) + "/" + std::to_string(gpus)] =
        point;
    state.counters["preprocess_s"] = point.preprocess_s;
    state.counters["sim_cycles"] = point.sim_cycles;
}

const int registered = [] {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        for (const unsigned gpus : {1u, 2u, 4u}) {
            benchmark::RegisterBenchmark(
                ("fig17/threads:" + std::to_string(threads) +
                 "/gpus:" + std::to_string(gpus))
                    .c_str(),
                [threads, gpus](benchmark::State &s) {
                    BM_point(s, threads, gpus);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    return 0;
}();

void
printSummary()
{
    Table table("Fig 17 — DiGraph total time, pagerank on webbase "
                "(preprocess wall + sim processing at 1 GHz)",
                {"CPU threads", "#GPUs", "preprocess_s", "processing_s",
                 "total_s"});
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
        for (const unsigned gpus : {1u, 2u, 4u}) {
            const auto &p = g_points[std::to_string(threads) + "/" +
                                     std::to_string(gpus)];
            const double proc = p.sim_cycles / kCyclesPerSecond;
            table.addRow({std::to_string(threads), std::to_string(gpus),
                          Table::num(p.preprocess_s), Table::num(proc),
                          Table::num(p.preprocess_s + proc)});
        }
    }
    table.print();
}

} // namespace

DIGRAPH_BENCH_MAIN(printSummary)
